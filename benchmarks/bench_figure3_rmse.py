"""Figure 3 — average ECDF RMSE after removing each method's explanation.

The paper's shape: MOCHE and the density/optimization-guided baselines
achieve small RMSE (the distributions become similar after removal), while
the subsequence-shape baselines (STOMP, Series2Graph) and a misaligned
greedy prefix leave large gaps.
"""

from __future__ import annotations

import math

from benchmarks.conftest import save_result
from repro.experiments.effectiveness import format_rmse_table, run_effectiveness


def test_figure3_average_rmse(benchmark, evaluation_records):
    results = benchmark.pedantic(
        run_effectiveness, args=(evaluation_records,), rounds=1, iterations=1
    )
    save_result("figure3_rmse", format_rmse_table(results))

    for dataset, per_method in results.items():
        moche_rmse = per_method["moche"]
        assert not math.isnan(moche_rmse)
        assert 0.0 <= moche_rmse < 0.5, dataset
        # MOCHE must do at least as well as the shape-based baselines, which
        # the paper singles out as ineffective.
        for weak in ("stomp", "series2graph"):
            if not math.isnan(per_method.get(weak, math.nan)):
                assert moche_rmse <= per_method[weak] + 0.05, (dataset, weak)
