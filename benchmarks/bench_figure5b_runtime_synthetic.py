"""Figure 5b — runtime versus set size on the synthetic workload (p = 3%).

Normal reference and test sets of equal size with 3% of the test set
replaced by uniform noise, explained under random preference lists.  The
paper's shape: MOCHE scales to 100,000-point sets and is at least an order
of magnitude faster than Greedy (the fastest comprehensible baseline) at
large sizes, and faster than the MOCHE_ns ablation.
"""

from __future__ import annotations

from benchmarks.conftest import save_result
from repro.experiments.runtime import format_runtime_table, run_runtime_synthetic


def test_figure5b_runtime_synthetic(benchmark, config):
    measurements = benchmark.pedantic(
        run_runtime_synthetic, args=(config,), rounds=1, iterations=1
    )
    table = format_runtime_table(
        measurements,
        title="Figure 5b — runtime (seconds) vs synthetic set size (p = 3%)",
    )
    save_result("figure5b_runtime_synthetic", table)

    assert {m.method for m in measurements} == {"moche", "greedy", "moche_ns"}
    largest = max(m.size for m in measurements)
    at_largest = {m.method: m.seconds for m in measurements if m.size == largest}
    # At the largest size MOCHE is not slower than the greedy baseline.
    assert at_largest["moche"] <= at_largest["greedy"] * 1.5
