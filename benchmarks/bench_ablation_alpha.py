"""Ablation — sensitivity of the explanation size to the significance level.

Not a paper figure: the significance level is the one tunable parameter of
the problem definition (the paper fixes alpha = 0.05 throughout), so this
ablation sweeps it and reports how the explanation size, the lower bound
and the decision to fail react.  Expected shape: smaller alpha means a
wider acceptance band, hence fewer points to remove, until the original
test passes and there is nothing to explain.
"""

from __future__ import annotations

from benchmarks.conftest import save_result
from repro.core.analysis import alpha_sensitivity
from repro.datasets.synthetic import contaminated_pair
from repro.experiments.reporting import format_table

ALPHAS = (0.20, 0.10, 0.05, 0.01, 0.001)


def test_ablation_alpha_sensitivity(benchmark):
    pair = contaminated_pair(size=3000, fraction=0.03, seed=17)
    points = benchmark.pedantic(
        alpha_sensitivity,
        args=(pair.reference, pair.test, ALPHAS),
        rounds=1,
        iterations=1,
    )
    rows = [
        [
            point.alpha,
            "failed" if point.failed else "passed",
            point.size if point.size is not None else "-",
            point.lower_bound if point.lower_bound is not None else "-",
        ]
        for point in points
    ]
    table = format_table(
        ["alpha", "KS outcome", "explanation size", "lower bound"],
        rows,
        title="Ablation — explanation size vs significance level (synthetic, p = 3%)",
    )
    save_result("ablation_alpha_sensitivity", table)

    failed_sizes = [point.size for point in points if point.failed]
    assert failed_sizes, "at least one significance level must fail"
    # The size shrinks (weakly) as alpha decreases through the sweep.
    assert failed_sizes == sorted(failed_sizes, reverse=True)
