"""Trace smoke — crash a live shard under ``repro serve --trace-dir``.

End-to-end check of the tracing and flight-recorder surface, the way an
operator would hit it on a bad day: start a real ``repro serve --listen
HOST:PORT --executor process --trace-dir DIR`` child, feed it drifting
streams over the newline-JSON wire, SIGKILL one of its shard processes
mid-ingest, keep feeding, and assert that

* the service survives (the shard respawns and the drain completes);
* the ``trace`` wire op returns a structurally valid Chrome trace-event
  payload with retained chunk traces;
* the final report admits the restart instead of reading as a clean run;
* after shutdown the trace directory holds a Perfetto-loadable
  ``trace.json`` and a ``flight-crash-*.json`` flight-recorder dump whose
  channels include the crash event.

The ``/healthz`` endpoint is probed on the same run (the metrics listener
serves it when the service wires a health callable).

Run it directly (the CI smoke job does)::

    PYTHONPATH=src python benchmarks/bench_trace_smoke.py --quick

Results are written machine-readably to
``benchmarks/results/BENCH_trace.json``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.obs.recorder import FLIGHT_SCHEMA
from repro.obs.trace import validate_chrome_trace

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from benchmarks.conftest import save_bench_json  # noqa: E402

DEFAULT_OUTPUT = Path(__file__).parent / "results" / "BENCH_trace.json"
SRC_DIR = Path(__file__).resolve().parent.parent / "src"

FULL = {"streams": 6, "segments": 4, "segment": 400, "window": 150, "chunk": 200}
QUICK = {"streams": 4, "segments": 3, "segment": 250, "window": 100, "chunk": 125}

LISTEN_RE = re.compile(r"listening on (\S+):(\d+)")
METRICS_RE = re.compile(r"metrics on (\S+):(\d+)")


def build_fleet(streams: int, segments: int, segment: int) -> dict[str, np.ndarray]:
    """``streams`` unique regime-switching feeds."""
    fleet: dict[str, np.ndarray] = {}
    for index in range(streams):
        rng = np.random.default_rng(index)
        parts = [
            rng.normal(3.0 if part % 2 else 0.0, 1.0, size=segment)
            for part in range(segments)
        ]
        fleet[f"stream-{index:02d}"] = np.concatenate(parts)
    return fleet


def shard_pids(parent_pid: int) -> list[int]:
    """The serve child's shard worker pids (Linux /proc walk).

    Multiprocessing's resource tracker is also a child of the serve
    process; killing it would poison the run, so it is filtered out by
    cmdline.
    """
    pids: list[int] = []
    for entry in Path("/proc").iterdir():
        if not entry.name.isdigit():
            continue
        try:
            stat = (entry / "stat").read_text()
            cmdline = (entry / "cmdline").read_bytes()
        except OSError:
            continue  # raced with process exit
        ppid = int(stat.rsplit(")", 1)[1].split()[1])
        if ppid == parent_pid and b"resource_tracker" not in cmdline:
            pids.append(int(entry.name))
    return sorted(pids)


def wait_for_shards(parent_pid: int, count: int, timeout: float = 30.0) -> list[int]:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        pids = shard_pids(parent_pid)
        if len(pids) >= count:
            return pids
        time.sleep(0.05)
    raise RuntimeError(f"serve child never spawned {count} shards (saw {pids})")


async def _http_get(host: str, port: int, path: str) -> tuple[str, str]:
    """One HTTP/1.1 GET; returns (status line, body)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(f"GET {path} HTTP/1.1\r\nHost: {host}\r\n\r\n".encode())
        await writer.drain()
        payload = await asyncio.wait_for(reader.read(), timeout=30)
    finally:
        writer.close()
    head, _, body = payload.decode().partition("\r\n\r\n")
    return head.split("\r\n")[0], body


async def _drive(
    listen_addr: tuple[str, int],
    metrics_addr: tuple[str, int],
    fleet: dict[str, np.ndarray],
    chunk: int,
    child_pid: int,
    shards: int,
) -> dict:
    """Feed the fleet, killing one shard halfway through."""
    reader, writer = await asyncio.open_connection(*listen_addr)

    async def op(payload: dict) -> dict:
        writer.write((json.dumps(payload) + "\n").encode())
        await writer.drain()
        reply = json.loads(await reader.readline())
        if not reply.get("ok"):
            raise RuntimeError(f"{payload.get('op')} not acknowledged: {reply}")
        return reply

    longest = max(values.size for values in fleet.values())
    starts = list(range(0, longest, chunk))
    killed_pid = None
    for index, start in enumerate(starts):
        for stream_id, values in fleet.items():
            piece = values[start:start + chunk]
            if piece.size:
                writer.write(
                    (json.dumps({"stream": stream_id, "values": piece.tolist()}) + "\n").encode()
                )
                await writer.drain()
        if killed_pid is None and index >= len(starts) // 2:
            # Mid-ingest shard murder: the service must notice, respawn
            # and keep serving the remaining chunks.
            victims = wait_for_shards(child_pid, shards)
            killed_pid = victims[0]
            os.kill(killed_pid, signal.SIGKILL)
    await op({"op": "drain"})

    health_status, health_body = await _http_get(*metrics_addr, "/healthz")
    trace_payload = (await op({"op": "trace"}))["trace"]
    stats = (await op({"op": "stats"}))["stats"]
    report = (await op({"op": "report"}))["report"]
    await op({"op": "shutdown"})
    writer.close()
    return {
        "killed_pid": killed_pid,
        "health_status": health_status,
        "health_body": health_body,
        "trace": trace_payload,
        "stats": stats,
        "report": report,
    }


def run_child(
    fleet: dict[str, np.ndarray], window: int, chunk: int, shards: int, trace_dir: Path
) -> dict:
    """Start the serve child, drive it through a shard crash, return results."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    child = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--metrics",
            "127.0.0.1:0",
            "--executor",
            "process",
            "--shards",
            str(shards),
            "--trace-dir",
            str(trace_dir),
            "--trace-sample",
            "1.0",
            "--window",
            str(window),
            "--summary-only",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        metrics_addr = listen_addr = None
        while metrics_addr is None or listen_addr is None:
            line = child.stdout.readline()
            if not line:
                raise RuntimeError("child exited before announcing its ports")
            if match := METRICS_RE.search(line):
                metrics_addr = (match.group(1), int(match.group(2)))
            if match := LISTEN_RE.search(line):
                listen_addr = (match.group(1), int(match.group(2)))
        started = time.perf_counter()
        result = asyncio.run(
            _drive(listen_addr, metrics_addr, fleet, chunk, child.pid, shards)
        )
        result["seconds"] = time.perf_counter() - started
        _, stderr = child.communicate(timeout=120)
        if child.returncode != 0:
            raise RuntimeError(f"child exited with {child.returncode}:\n{stderr}")
    finally:
        if child.poll() is None:
            child.kill()
            child.wait()
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small workload for CI smoke runs")
    parser.add_argument("--shards", type=int, default=2,
                        help="process shards to serve with (default 2)")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="where to write the machine-readable JSON")
    args = parser.parse_args(argv)

    scale = QUICK if args.quick else FULL
    fleet = build_fleet(scale["streams"], scale["segments"], scale["segment"])
    observations = sum(values.size for values in fleet.values())

    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="repro-trace-smoke-") as tmp:
        trace_dir = Path(tmp) / "telemetry"
        result = run_child(
            fleet, scale["window"], scale["chunk"], args.shards, trace_dir
        )

        # The live trace op must hand back a Perfetto-loadable payload.
        wire_problems = validate_chrome_trace(result["trace"])
        failures.extend(f"trace op: {problem}" for problem in wire_problems)
        wire_traces = result["trace"].get("otherData", {}).get("traces", 0)
        if not wire_problems and not wire_traces:
            failures.append("trace op: no chunk traces retained at sample rate 1.0")

        if result["health_status"] != "HTTP/1.1 200 OK":
            failures.append(f"/healthz answered {result['health_status']}")
        else:
            health = json.loads(result["health_body"])
            if health.get("status") != "ok":
                failures.append(f"/healthz status {health.get('status')!r} != 'ok'")

        restarts = result["stats"].get("restarts", 0)
        if not restarts:
            failures.append("stats admit no shard restart after the kill")
        # The report op answers the canonical (executor-independent) view:
        # per-stream counters, no wall clocks or executor internals.
        alarms = sum(
            stream.get("alarms_raised", 0)
            for stream in result["report"].get("streams", [])
        )
        if not alarms:
            failures.append("the fleet never alarmed; nothing was measured")

        # Post-shutdown artefacts in the trace directory.
        trace_file = trace_dir / "trace.json"
        events = 0
        if not trace_file.exists():
            failures.append("serve --trace-dir left no trace.json behind")
        else:
            payload = json.loads(trace_file.read_text())
            failures.extend(
                f"trace.json: {problem}" for problem in validate_chrome_trace(payload)
            )
            events = len(payload.get("traceEvents", []))
        crash_dumps = sorted(trace_dir.glob("flight-crash-*.json"))
        if not crash_dumps:
            failures.append("shard crash left no flight-crash-*.json recorder dump")
        else:
            dump = json.loads(crash_dumps[0].read_text())
            if dump.get("schema") != FLIGHT_SCHEMA:
                failures.append(f"flight dump schema {dump.get('schema')!r}")
            dumped_events = {
                event.get("event")
                for channel in dump.get("channels", {}).values()
                for event in channel
            }
            if "crash" not in dumped_events:
                failures.append(f"flight dump has no crash event: {sorted(dumped_events)}")

    payload = {
        "quick": args.quick,
        "streams": scale["streams"],
        "shards": args.shards,
        "observations_sent": observations,
        "replay_seconds": round(result["seconds"], 4),
        "killed_pid": result["killed_pid"],
        "restarts": restarts,
        "alarms": alarms,
        "wire_traces": wire_traces,
        "trace_events_on_disk": events,
        "crash_dumps": [dump.name for dump in crash_dumps],
        "failures": failures,
        "ok": not failures,
    }
    save_bench_json("trace_smoke", payload, args.output)
    print(f"killed shard pid {result['killed_pid']}; restarts {restarts}; "
          f"alarms {alarms}")
    print(f"{wire_traces} traces over the wire; {events} trace events on disk; "
          f"dumps: {payload['crash_dumps']}")
    print(f"written to {args.output}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("trace smoke: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
