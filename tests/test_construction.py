"""Tests for the phase-2 construction (repro.core.construction)."""

from __future__ import annotations

from itertools import combinations

import numpy as np
import pytest

from repro.core.construction import PartialExplanationChecker, construct_most_comprehensible
from repro.core.cumulative import ExplanationProblem
from repro.core.preference import PreferenceList
from repro.core.size_search import explanation_size
from repro.exceptions import NoExplanationError, ValidationError


def brute_force_is_partial(problem: ExplanationProblem, subset: tuple[int, ...], size: int) -> bool:
    """Ground truth for Lemma 2: is ``subset`` contained in some explanation?"""
    others = [i for i in range(problem.m) if i not in subset]
    needed = size - len(subset)
    if needed < 0:
        return False
    for completion in combinations(others, needed):
        candidate = np.array(list(subset) + list(completion))
        if problem.is_reversing_subset(candidate):
            return True
    return False


class TestPartialExplanationChecker:
    def test_empty_subset_is_partial(self, small_failed_problem):
        size = explanation_size(small_failed_problem).size
        checker = PartialExplanationChecker(small_failed_problem, size)
        empty = np.zeros(small_failed_problem.q, dtype=np.int64)
        assert checker.is_partial_explanation(empty)

    def test_matches_brute_force_for_singletons(self, small_failed_problem):
        problem = small_failed_problem
        size = explanation_size(problem).size
        checker = PartialExplanationChecker(problem, size)
        for index in range(problem.m):
            expected = brute_force_is_partial(problem, (index,), size)
            assert checker.would_extend(index) == expected, index

    def test_matches_brute_force_for_pairs(self, small_failed_problem):
        problem = small_failed_problem
        size = explanation_size(problem).size
        if size < 2:
            pytest.skip("explanation size too small for pair checks")
        base_checker = PartialExplanationChecker(problem, size)
        for first, second in combinations(range(problem.m), 2):
            checker = PartialExplanationChecker(problem, size)
            if not checker.would_extend(first):
                continue
            checker.commit(first)
            expected = brute_force_is_partial(problem, (first, second), size)
            assert checker.would_extend(second) == expected, (first, second)
        # The base checker was never mutated by the per-pair checkers.
        assert base_checker.selected_count == 0

    def test_commit_updates_state(self, small_failed_problem):
        problem = small_failed_problem
        size = explanation_size(problem).size
        checker = PartialExplanationChecker(problem, size)
        target = next(i for i in range(problem.m) if checker.would_extend(i))
        checker.commit(target)
        assert checker.selected_count == 1
        assert checker.cumulative_selected.max() == 1

    def test_infeasible_size_raises(self, paper_example):
        reference, test, alpha = paper_example
        problem = ExplanationProblem(reference, test, alpha)
        with pytest.raises(NoExplanationError):
            PartialExplanationChecker(problem, 1)

    def test_wrong_shape_rejected(self, small_failed_problem):
        size = explanation_size(small_failed_problem).size
        checker = PartialExplanationChecker(small_failed_problem, size)
        with pytest.raises(ValidationError):
            checker.is_partial_explanation(np.zeros(3, dtype=np.int64))

    def test_paper_example6_membership(self, paper_example):
        """Example 6: t4 (=20) is in no explanation; t3 (=12) and t2 (=13) are."""
        reference, test, alpha = paper_example
        problem = ExplanationProblem(reference, test, alpha)
        checker = PartialExplanationChecker(problem, 2)
        assert not checker.would_extend(3)  # t4 = 20
        assert checker.would_extend(2)      # t3 = 12
        checker.commit(2)
        assert checker.would_extend(1)      # t2 = 13


class TestConstruction:
    def test_paper_example6_explanation(self, paper_example):
        reference, test, alpha = paper_example
        problem = ExplanationProblem(reference, test, alpha)
        preference = PreferenceList.from_order([3, 2, 1, 0])
        indices = construct_most_comprehensible(problem, 2, preference.order)
        assert sorted(indices.tolist()) == [1, 2]

    def test_result_has_requested_size_and_reverses(self, small_failed_problem):
        problem = small_failed_problem
        size = explanation_size(problem).size
        preference = PreferenceList.identity(problem.m)
        indices = construct_most_comprehensible(problem, size, preference.order)
        assert indices.size == size
        assert problem.is_reversing_subset(indices)

    def test_indices_follow_preference_order(self, small_failed_problem):
        problem = small_failed_problem
        size = explanation_size(problem).size
        preference = PreferenceList.random(problem.m, seed=3)
        indices = construct_most_comprehensible(problem, size, preference.order)
        ranks = preference.ranks[indices]
        assert np.all(np.diff(ranks) > 0)

    def test_invalid_preference_rejected(self, small_failed_problem):
        size = explanation_size(small_failed_problem).size
        with pytest.raises(ValidationError):
            construct_most_comprehensible(small_failed_problem, size, [0, 0, 1])

    def test_different_preferences_same_size(self, small_failed_problem):
        problem = small_failed_problem
        size = explanation_size(problem).size
        sizes = set()
        for seed in range(4):
            preference = PreferenceList.random(problem.m, seed=seed)
            indices = construct_most_comprehensible(problem, size, preference.order)
            sizes.add(indices.size)
        assert sizes == {size}


class TestJitScan:
    """The optional numba scan: env gating, graceful fallback, parity."""

    def test_jit_scan_matches_vectorized(self, small_failed_problem):
        # Runs the compiled kernel when numba is installed and the silent
        # vectorized fallback otherwise; the contract (identical output)
        # holds either way.
        problem = small_failed_problem
        size = explanation_size(problem).size
        order = PreferenceList.random(problem.m, seed=7).order
        jit = construct_most_comprehensible(problem, size, order, scan="jit")
        vectorized = construct_most_comprehensible(
            problem, size, order, scan="vectorized"
        )
        assert np.array_equal(jit, vectorized)

    def test_repro_jit_env_gates_the_default_scan(self, monkeypatch):
        from repro.core.construction import default_scan, jit_available

        monkeypatch.delenv("REPRO_JIT", raising=False)
        assert default_scan() == "vectorized"
        monkeypatch.setenv("REPRO_JIT", "1")
        expected = "jit" if jit_available() else "vectorized"
        assert default_scan() == expected
        monkeypatch.setenv("REPRO_JIT", "0")
        assert default_scan() == "vectorized"

    def test_default_scan_resolves_when_scan_is_omitted(
        self, small_failed_problem, monkeypatch
    ):
        # REPRO_JIT=1 must be safe whether or not numba is installed.
        monkeypatch.setenv("REPRO_JIT", "1")
        problem = small_failed_problem
        size = explanation_size(problem).size
        order = PreferenceList.identity(problem.m).order
        explicit = construct_most_comprehensible(
            problem, size, order, scan="vectorized"
        )
        defaulted = construct_most_comprehensible(problem, size, order)
        assert np.array_equal(explicit, defaulted)

    @pytest.mark.skipif(
        not __import__("repro.core.construction", fromlist=["jit_available"]).jit_available(),
        reason="numba is not installed",
    )
    def test_jit_kernel_parity_on_random_problems(self):
        rng = np.random.default_rng(11)
        for trial in range(10):
            n = int(rng.integers(50, 150))
            m = int(rng.integers(50, 150))
            reference = rng.normal(size=n)
            test = np.concatenate(
                [rng.normal(size=m - m // 4), rng.uniform(2.5, 5.0, size=m // 4)]
            )
            try:
                problem = ExplanationProblem(reference, test, alpha=0.05)
            except Exception:
                continue
            size = explanation_size(problem).size
            order = rng.permutation(m)
            jit = construct_most_comprehensible(problem, size, order, scan="jit")
            vectorized = construct_most_comprehensible(
                problem, size, order, scan="vectorized"
            )
            assert np.array_equal(jit, vectorized), f"trial {trial} diverged"
