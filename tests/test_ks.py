"""Tests for the two-sample KS test substrate (repro.core.ks)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from scipy import stats

from repro.core import ks
from repro.exceptions import (
    EmptyDatasetError,
    InvalidSignificanceLevelError,
    NonFiniteDataError,
)


class TestValidation:
    def test_empty_reference_rejected(self):
        with pytest.raises(EmptyDatasetError):
            ks.ks_test([], [1.0, 2.0])

    def test_empty_test_rejected(self):
        with pytest.raises(EmptyDatasetError):
            ks.ks_test([1.0, 2.0], [])

    def test_nan_rejected(self):
        with pytest.raises(NonFiniteDataError):
            ks.ks_test([1.0, float("nan")], [1.0, 2.0])

    def test_infinity_rejected(self):
        with pytest.raises(NonFiniteDataError):
            ks.ks_test([1.0, 2.0], [float("inf"), 2.0])

    @pytest.mark.parametrize("alpha", [0.0, 1.0, -0.1, 1.5, 2.0])
    def test_invalid_alpha_rejected(self, alpha):
        with pytest.raises(InvalidSignificanceLevelError):
            ks.ks_test([1.0, 2.0], [1.0, 2.0], alpha=alpha)

    def test_multidimensional_input_is_flattened(self):
        result = ks.ks_test(np.ones((2, 3)), np.ones(4) * 2, alpha=0.05)
        assert result.n == 6
        assert result.m == 4


class TestStatistic:
    def test_identical_samples_have_zero_statistic(self):
        sample = np.array([1.0, 2.0, 3.0, 4.0])
        assert ks.ks_statistic(sample, sample) == 0.0

    def test_disjoint_samples_have_statistic_one(self):
        assert ks.ks_statistic([1.0, 2.0], [10.0, 11.0]) == 1.0

    def test_statistic_is_symmetric(self, rng):
        a = rng.normal(size=50)
        b = rng.normal(0.5, size=60)
        assert ks.ks_statistic(a, b) == pytest.approx(ks.ks_statistic(b, a))

    def test_statistic_in_unit_interval(self, rng):
        a = rng.normal(size=37)
        b = rng.uniform(-2, 2, size=23)
        statistic = ks.ks_statistic(a, b)
        assert 0.0 <= statistic <= 1.0

    @pytest.mark.parametrize("seed", range(6))
    def test_statistic_matches_scipy(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=int(rng.integers(10, 200)))
        b = rng.normal(rng.uniform(-1, 1), size=int(rng.integers(10, 200)))
        expected = stats.ks_2samp(a, b, method="asymp").statistic
        assert ks.ks_statistic(a, b) == pytest.approx(expected, abs=1e-12)

    def test_statistic_with_ties_matches_scipy(self):
        a = np.array([1, 1, 2, 2, 3, 3, 3], dtype=float)
        b = np.array([2, 2, 2, 3, 4, 4], dtype=float)
        expected = stats.ks_2samp(a, b, method="asymp").statistic
        assert ks.ks_statistic(a, b) == pytest.approx(expected, abs=1e-12)

    def test_paper_example_statistic(self, paper_example):
        reference, test, _ = paper_example
        # F_R(12)=0, F_T(12)=1/4 ; F_R(13)=0, F_T(13)=3/4 ; difference 0.75.
        assert ks.ks_statistic(reference, test) == pytest.approx(0.75)


class TestCriticalValue:
    def test_critical_coefficient_at_0_05(self):
        assert ks.critical_coefficient(0.05) == pytest.approx(
            math.sqrt(-0.5 * math.log(0.025))
        )

    def test_critical_value_formula(self):
        n, m, alpha = 100, 50, 0.05
        expected = ks.critical_coefficient(alpha) * math.sqrt((n + m) / (n * m))
        assert ks.critical_value(alpha, n, m) == pytest.approx(expected)

    def test_smaller_alpha_gives_larger_threshold(self):
        assert ks.critical_value(0.01, 100, 100) > ks.critical_value(0.10, 100, 100)

    def test_larger_samples_give_smaller_threshold(self):
        assert ks.critical_value(0.05, 1000, 1000) < ks.critical_value(0.05, 50, 50)

    def test_zero_sizes_rejected(self):
        with pytest.raises(EmptyDatasetError):
            ks.critical_value(0.05, 0, 10)

    def test_existence_guarantee_bound(self):
        assert ks.existence_guaranteed(0.05)
        assert ks.existence_guaranteed(2.0 / math.e**2)
        assert not ks.existence_guaranteed(0.5)


class TestPValue:
    def test_kolmogorov_survival_limits(self):
        assert ks.kolmogorov_survival(0.0) == 1.0
        assert ks.kolmogorov_survival(10.0) == pytest.approx(0.0, abs=1e-12)

    def test_kolmogorov_survival_monotone(self):
        values = [ks.kolmogorov_survival(x) for x in np.linspace(0.3, 3.0, 20)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_pvalue_close_to_scipy_for_large_samples(self, rng):
        a = rng.normal(size=400)
        b = rng.normal(0.3, size=450)
        statistic = ks.ks_statistic(a, b)
        ours = ks.asymptotic_pvalue(statistic, a.size, b.size)
        theirs = stats.ks_2samp(a, b, method="asymp").pvalue
        assert ours == pytest.approx(theirs, rel=0.1, abs=0.02)

    def test_identical_samples_have_pvalue_one(self):
        sample = np.arange(20, dtype=float)
        result = ks.ks_test(sample, sample)
        assert result.pvalue == pytest.approx(1.0)


class TestDecision:
    def test_same_distribution_usually_passes(self, rng):
        reference = rng.normal(size=300)
        test = rng.normal(size=300)
        result = ks.ks_test(reference, test, alpha=0.01)
        assert result.passed

    def test_shifted_distribution_fails(self, rng):
        reference = rng.normal(size=300)
        test = rng.normal(2.0, size=300)
        result = ks.ks_test(reference, test, alpha=0.05)
        assert result.rejected

    def test_rejected_and_passed_are_complements(self, rng):
        reference = rng.normal(size=100)
        test = rng.normal(size=120)
        result = ks.ks_test(reference, test)
        assert result.rejected != result.passed

    def test_decision_uses_strict_inequality(self):
        # Construct a result at the boundary: statistic equal to threshold
        # must NOT be a rejection (Section 3.1, Step 3).
        result = ks.KSTestResult(
            statistic=0.5, threshold=0.5, alpha=0.05, n=10, m=10, pvalue=0.2
        )
        assert result.passed

    def test_paper_example_fails_at_alpha_03(self, paper_example):
        reference, test, alpha = paper_example
        assert ks.ks_test(reference, test, alpha).rejected

    def test_result_records_sizes_and_alpha(self, rng):
        reference = rng.normal(size=30)
        test = rng.normal(size=40)
        result = ks.ks_test(reference, test, alpha=0.07)
        assert (result.n, result.m, result.alpha) == (30, 40, 0.07)
