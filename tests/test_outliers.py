"""Tests for the outlier/anomaly scoring substrates (repro.outliers)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import EmptyDatasetError, ValidationError
from repro.outliers.kde import GaussianKDE, density_ratio_scores, empirical_pmf, pmf_evaluate
from repro.outliers.matrix_profile import (
    matrix_profile,
    point_scores_from_subsequences,
    subsequence_anomaly_scores,
)
from repro.outliers.series2graph import Series2Graph
from repro.outliers.simple import iqr_scores, knn_distance_scores, zscore_scores
from repro.outliers.spectral_residual import SpectralResidual, spectral_residual_scores


class TestSpectralResidual:
    def test_scores_have_series_length(self, rng):
        series = rng.normal(size=200)
        scores = spectral_residual_scores(series)
        assert scores.shape == (200,)

    def test_spike_gets_high_score(self, rng):
        series = np.sin(np.linspace(0, 20 * np.pi, 500)) + rng.normal(0, 0.05, 500)
        series[250] += 8.0
        scores = SpectralResidual().scores(series)
        assert np.argmax(scores) in range(245, 256)

    def test_anomalous_region_scores_above_normal_region(self, rng):
        series = rng.normal(0, 0.2, size=400)
        series[300:320] += 5.0
        scores = SpectralResidual().scores(series)
        assert scores[300:320].mean() > scores[50:250].mean()

    def test_empty_series_rejected(self):
        with pytest.raises(EmptyDatasetError):
            SpectralResidual().scores(np.array([]))

    def test_short_series_falls_back_gracefully(self):
        scores = SpectralResidual().scores(np.array([1.0, 5.0, 1.0]))
        assert scores.shape == (3,)
        assert np.isfinite(scores).all()

    def test_unknown_option_rejected(self):
        with pytest.raises(ValidationError):
            spectral_residual_scores(np.arange(10.0), bogus=1)

    def test_constant_series_produces_finite_scores(self):
        scores = SpectralResidual().scores(np.full(100, 3.0))
        assert np.isfinite(scores).all()


class TestKDE:
    def test_density_integrates_to_about_one(self, rng):
        sample = rng.normal(size=400)
        kde = GaussianKDE(sample)
        grid = np.linspace(-6, 6, 2000)
        integral = np.trapezoid(kde.evaluate(grid), grid)
        assert integral == pytest.approx(1.0, abs=0.05)

    def test_density_higher_near_data(self, rng):
        sample = rng.normal(size=300)
        kde = GaussianKDE(sample)
        assert kde.evaluate(np.array([0.0]))[0] > kde.evaluate(np.array([6.0]))[0]

    def test_constant_sample_does_not_crash(self):
        kde = GaussianKDE(np.full(50, 2.0))
        assert np.isfinite(kde.evaluate(np.array([2.0, 3.0]))).all()

    def test_invalid_bandwidth_rejected(self, rng):
        with pytest.raises(ValidationError):
            GaussianKDE(rng.normal(size=10), bandwidth=-1.0)

    def test_empty_sample_rejected(self):
        with pytest.raises(EmptyDatasetError):
            GaussianKDE(np.array([]))

    def test_callable_interface(self, rng):
        sample = rng.normal(size=100)
        kde = GaussianKDE(sample)
        points = np.array([0.0, 1.0])
        assert np.array_equal(kde(points), kde.evaluate(points))

    def test_empirical_pmf_sums_to_one(self):
        pmf = empirical_pmf(np.array([1.0, 1.0, 2.0, 3.0]))
        assert sum(pmf.values()) == pytest.approx(1.0)
        assert pmf[1.0] == pytest.approx(0.5)

    def test_pmf_evaluate_unseen_values_are_zero(self):
        pmf = empirical_pmf(np.array([1.0, 2.0]))
        assert np.array_equal(pmf_evaluate(pmf, np.array([3.0])), [0.0])

    def test_density_ratio_highlights_test_only_region(self, rng):
        reference = rng.normal(size=400)
        test = np.concatenate([rng.normal(size=300), rng.normal(6.0, 0.3, size=100)])
        scores = density_ratio_scores(reference, test)
        assert scores[300:].mean() > scores[:300].mean()

    def test_density_ratio_discrete_mode(self, rng):
        reference = rng.integers(1, 5, size=200).astype(float)
        test = np.concatenate(
            [rng.integers(1, 5, size=150), np.full(50, 9.0)]
        ).astype(float)
        scores = density_ratio_scores(reference, test, discrete=True)
        assert scores[150:].min() > np.median(scores[:150])


class TestMatrixProfile:
    def test_profile_length(self, rng):
        query = rng.normal(size=120)
        reference = rng.normal(size=150)
        profile = matrix_profile(query, reference, window=20)
        assert profile.shape == (101,)

    def test_similar_series_have_small_profile(self, rng):
        base = np.sin(np.linspace(0, 10 * np.pi, 300))
        profile = matrix_profile(base + rng.normal(0, 0.01, 300), base, window=25)
        assert profile.max() < 2.0

    def test_anomalous_subsequence_scores_highest(self, rng):
        reference = np.sin(np.linspace(0, 12 * np.pi, 400)) + rng.normal(0, 0.05, 400)
        query = np.sin(np.linspace(0, 12 * np.pi, 400)) + rng.normal(0, 0.05, 400)
        query[200:230] = 5.0 + rng.normal(0, 0.05, 30)  # flat alien segment
        window = 25
        profile = subsequence_anomaly_scores(query, reference, window)
        assert 175 <= int(np.argmax(profile)) <= 230

    def test_matches_naive_computation(self, rng):
        query = rng.normal(size=40)
        reference = rng.normal(size=45)
        window = 8
        fast = matrix_profile(query, reference, window)
        slow = _naive_matrix_profile(query, reference, window)
        assert np.allclose(fast, slow, atol=1e-6)

    def test_window_too_long_rejected(self, rng):
        with pytest.raises(ValidationError):
            matrix_profile(rng.normal(size=10), rng.normal(size=10), window=20)

    def test_window_too_short_rejected(self, rng):
        with pytest.raises(ValidationError):
            matrix_profile(rng.normal(size=10), rng.normal(size=10), window=1)

    def test_point_scores_cover_series(self):
        scores = np.array([1.0, 5.0, 2.0])
        points = point_scores_from_subsequences(scores, series_length=6, window=4)
        assert points.shape == (6,)
        assert points.max() == 5.0
        # Points covered by the highest-scoring subsequence inherit its score.
        assert np.all(points[1:5] == 5.0)


def _naive_matrix_profile(query: np.ndarray, reference: np.ndarray, window: int) -> np.ndarray:
    def znorm(x: np.ndarray) -> np.ndarray:
        std = x.std()
        if std < 1e-12:
            return np.zeros_like(x)
        return (x - x.mean()) / std

    query_count = query.size - window + 1
    reference_count = reference.size - window + 1
    profile = np.empty(query_count)
    for i in range(query_count):
        a = znorm(query[i:i + window])
        best = np.inf
        for j in range(reference_count):
            b = znorm(reference[j:j + window])
            best = min(best, float(np.linalg.norm(a - b)))
        profile[i] = best
    return profile


class TestSeries2Graph:
    def test_scores_have_expected_length(self, rng):
        reference = np.sin(np.linspace(0, 20 * np.pi, 400)) + rng.normal(0, 0.05, 400)
        query = np.sin(np.linspace(0, 20 * np.pi, 300)) + rng.normal(0, 0.05, 300)
        model = Series2Graph(window=20).fit(reference)
        scores = model.score_subsequences(query)
        assert scores.shape == (281,)
        assert np.all(scores >= 0)

    def test_anomalous_shape_scores_higher(self, rng):
        reference = np.sin(np.linspace(0, 30 * np.pi, 600)) + rng.normal(0, 0.03, 600)
        query = np.sin(np.linspace(0, 15 * np.pi, 300)) + rng.normal(0, 0.03, 300)
        query[150:180] = np.linspace(0, 6, 30)  # alien ramp
        model = Series2Graph(window=20).fit(reference)
        scores = model.score_subsequences(query)
        assert scores[140:180].max() >= np.median(scores)

    def test_scoring_before_fit_rejected(self, rng):
        model = Series2Graph(window=10)
        with pytest.raises(ValidationError):
            model.score_subsequences(rng.normal(size=50))

    @pytest.mark.parametrize("kwargs", [{"window": 1}, {"window": 10, "node_count": 1}])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            Series2Graph(**kwargs)


class TestSimpleScores:
    def test_zscore_flags_extreme_values(self, rng):
        values = np.concatenate([rng.normal(size=100), [10.0]])
        scores = zscore_scores(values)
        assert np.argmax(scores) == 100

    def test_zscore_with_reference(self, rng):
        reference = rng.normal(size=200)
        values = np.array([0.0, 5.0])
        scores = zscore_scores(values, reference)
        assert scores[1] > scores[0]

    def test_iqr_scores_zero_inside_box(self, rng):
        values = rng.normal(size=500)
        scores = iqr_scores(values)
        q1, q3 = np.percentile(values, [25, 75])
        inside = (values >= q1) & (values <= q3)
        assert np.all(scores[inside] == 0.0)

    def test_knn_distance_larger_for_far_points(self, rng):
        reference = rng.normal(size=300)
        scores = knn_distance_scores(np.array([0.0, 8.0]), reference, neighbours=5)
        assert scores[1] > scores[0]

    def test_knn_invalid_neighbours_rejected(self, rng):
        with pytest.raises(ValidationError):
            knn_distance_scores(np.array([1.0]), rng.normal(size=10), neighbours=0)

    def test_empty_inputs_rejected(self):
        with pytest.raises(EmptyDatasetError):
            zscore_scores(np.array([]))
        with pytest.raises(EmptyDatasetError):
            iqr_scores(np.array([]))
        with pytest.raises(EmptyDatasetError):
            knn_distance_scores(np.array([1.0]), np.array([]))
