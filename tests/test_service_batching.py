"""Tests for the micro-batcher and its backpressure policies."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core.ks import ks_test
from repro.exceptions import ServiceBackendError, ValidationError
from repro.service.batching import ExplanationJob, JobOutcome, MicroBatcher


def make_job(stream_id: str = "s", position: int = 0, key=None) -> ExplanationJob:
    reference = np.array([0.0, 1.0, 2.0, 3.0])
    test = np.array([5.0, 6.0, 7.0, 8.0])
    return ExplanationJob(
        stream_id=stream_id,
        position=position,
        reference=reference,
        test=test,
        result=ks_test(reference, test, 0.05),
        key=key,
    )


class Collector:
    """Thread-safe sink for job outcomes."""

    def __init__(self) -> None:
        self.outcomes: list[JobOutcome] = []
        self._lock = threading.Lock()

    def __call__(self, outcome: JobOutcome) -> None:
        with self._lock:
            self.outcomes.append(outcome)


class TestExecution:
    def test_all_jobs_executed_and_delivered(self):
        collector = Collector()
        with MicroBatcher(lambda job: job.position, collector, workers=2) as batcher:
            for position in range(10):
                batcher.submit(make_job(position=position))
            batcher.drain()
        assert sorted(outcome.value for outcome in collector.outcomes) == list(range(10))
        assert batcher.stats.submitted == 10
        assert batcher.stats.executed == 10

    def test_handler_error_captured_per_job(self):
        collector = Collector()

        def handler(job):
            if job.position == 1:
                raise RuntimeError("boom")
            return "ok"

        with MicroBatcher(handler, collector, workers=1) as batcher:
            batcher.submit(make_job(position=0))
            batcher.submit(make_job(position=1))
            batcher.drain()
        by_position = {outcome.job.position: outcome for outcome in collector.outcomes}
        assert by_position[0].error is None and by_position[0].value == "ok"
        assert isinstance(by_position[1].error, RuntimeError)
        assert batcher.stats.failed == 1

    def test_coalesces_identical_keys_within_a_batch(self):
        collector = Collector()
        release = threading.Event()
        calls = []

        def handler(job):
            calls.append(job.position)
            release.wait(timeout=10)
            return "shared"

        batcher = MicroBatcher(handler, collector, workers=1, max_batch=8, capacity=16)
        # The first job occupies the single worker; the rest pile up in the
        # queue and are claimed as one batch when the worker frees up.
        batcher.submit(make_job(position=0, key="k"))
        time.sleep(0.1)
        for position in range(1, 6):
            batcher.submit(make_job(position=position, key="k"))
        release.set()
        batcher.close()
        assert len(collector.outcomes) == 6
        assert all(outcome.value == "shared" for outcome in collector.outcomes)
        # The queued duplicates ran as one coalesced batch.
        assert len(calls) <= 2
        assert batcher.stats.coalesced >= 4
        assert sum(outcome.coalesced for outcome in collector.outcomes) >= 4

    def test_jobs_without_key_never_coalesce(self):
        collector = Collector()
        release = threading.Event()
        calls = []

        def handler(job):
            calls.append(job.position)
            release.wait(timeout=10)
            return job.position

        batcher = MicroBatcher(handler, collector, workers=1, max_batch=8, capacity=16)
        batcher.submit(make_job(position=0))
        time.sleep(0.05)
        for position in range(1, 4):
            batcher.submit(make_job(position=position))
        release.set()
        batcher.close()
        assert len(calls) == 4
        assert batcher.stats.coalesced == 0


class TestBackpressure:
    def test_block_policy_blocks_producer_until_space(self):
        collector = Collector()
        release = threading.Event()

        def handler(job):
            release.wait(timeout=10)
            return None

        batcher = MicroBatcher(
            handler, collector, workers=1, max_batch=1, capacity=2, policy="block"
        )
        submitted = threading.Event()

        def producer():
            for position in range(5):
                batcher.submit(make_job(position=position))
            submitted.set()

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        # The worker is parked on the first job and the queue holds two more:
        # the producer must be blocked before submitting all five.
        time.sleep(0.2)
        assert not submitted.is_set()
        release.set()
        thread.join(timeout=10)
        assert submitted.is_set()
        batcher.close()
        assert len(collector.outcomes) == 5
        assert batcher.stats.dropped == 0

    def test_drop_oldest_policy_evicts_and_reports(self):
        collector = Collector()
        release = threading.Event()

        def handler(job):
            release.wait(timeout=10)
            return "done"

        batcher = MicroBatcher(
            handler, collector, workers=1, max_batch=1, capacity=2, policy="drop-oldest"
        )
        batcher.submit(make_job(position=0))  # claimed by the worker
        time.sleep(0.1)
        for position in range(1, 6):  # queue capacity 2: positions drop
            batcher.submit(make_job(position=position))
        release.set()
        batcher.close()
        assert batcher.stats.dropped == 3
        dropped = sorted(o.job.position for o in collector.outcomes if o.dropped)
        completed = sorted(o.job.position for o in collector.outcomes if not o.dropped)
        assert dropped == [1, 2, 3]  # oldest pending jobs evicted first
        assert completed == [0, 4, 5]

    def test_dropped_outcomes_are_delivered_off_the_submitting_thread(self):
        """Drop outcomes must run on workers, not on the submitter.

        Synchronous delivery inside ``submit()`` meant a callback that
        re-entered ``submit()`` on a full queue recursed without bound (each
        re-entry evicts another job, whose outcome re-enters again) and
        could deadlock against ``drain()``; routed through the worker
        delivery path, re-entry is a plain enqueue.
        """
        release = threading.Event()
        delivery_threads: list[str] = []
        resubmitted: set[int] = set()
        lock = threading.Lock()

        def on_outcome(outcome: JobOutcome) -> None:
            if not outcome.dropped:
                return
            with lock:
                delivery_threads.append(threading.current_thread().name)
                first_time = outcome.job.position not in resubmitted
                resubmitted.add(outcome.job.position)
            if first_time and outcome.job.position < 100:
                # Re-enter submit() from the callback: the original bug
                # recursed or deadlocked right here.  Only first-generation
                # jobs requeue, so the cascade is bounded.
                batcher.submit(make_job(position=outcome.job.position + 100))

        batcher = MicroBatcher(
            lambda job: release.wait(timeout=10),
            on_outcome,
            workers=1,
            max_batch=1,
            capacity=1,
            policy="drop-oldest",
        )
        submitter = threading.current_thread().name
        for position in range(6):
            batcher.submit(make_job(position=position))
        release.set()
        assert batcher.drain(timeout=30)
        batcher.close()
        assert delivery_threads, "some jobs must have been dropped"
        assert all(name != submitter for name in delivery_threads)
        assert all(name.startswith("repro-worker") for name in delivery_threads)

    def test_submit_never_blocks_under_drop_oldest(self):
        collector = Collector()
        release = threading.Event()
        batcher = MicroBatcher(
            lambda job: release.wait(timeout=10),
            collector,
            workers=1,
            capacity=1,
            policy="drop-oldest",
        )
        start = time.perf_counter()
        for position in range(50):
            batcher.submit(make_job(position=position))
        assert time.perf_counter() - start < 5.0
        release.set()
        batcher.close()


class TestLifecycle:
    def test_drain_waits_for_in_flight_work(self):
        collector = Collector()

        def handler(job):
            time.sleep(0.05)
            return "slow"

        with MicroBatcher(handler, collector, workers=2) as batcher:
            for position in range(4):
                batcher.submit(make_job(position=position))
            assert batcher.drain(timeout=30)
            assert len(collector.outcomes) == 4

    def test_close_without_drain_drops_pending_jobs(self):
        collector = Collector()
        release = threading.Event()

        def handler(job):
            release.wait(timeout=10)
            return "done"

        batcher = MicroBatcher(handler, collector, workers=1, max_batch=1, capacity=16)
        batcher.submit(make_job(position=0))  # claimed by the worker
        time.sleep(0.1)
        for position in range(1, 5):
            batcher.submit(make_job(position=position))
        release.set()
        batcher.close(drain=False)
        # The in-flight job completes; the queued ones are reported dropped.
        dropped = sorted(o.job.position for o in collector.outcomes if o.dropped)
        assert dropped == [1, 2, 3, 4]
        assert batcher.stats.dropped == 4
        assert len(collector.outcomes) == 5

    def test_submit_after_close_rejected(self):
        batcher = MicroBatcher(lambda job: None, workers=1)
        batcher.close()
        with pytest.raises(ValidationError):
            batcher.submit(make_job())

    def test_close_is_idempotent(self):
        batcher = MicroBatcher(lambda job: None, workers=1)
        batcher.close()
        batcher.close()

    def test_faulty_outcome_callback_surfaces_without_wedging(self):
        def bad_outcome(outcome):
            raise RuntimeError("callback bug")

        batcher = MicroBatcher(lambda job: "ok", bad_outcome, workers=1)
        for position in range(4):
            batcher.submit(make_job(position=position))
        # Workers survive the raising callback, every job still executes,
        # and the error is propagated by drain() instead of vanishing.
        with pytest.raises(ServiceBackendError, match="callback"):
            batcher.drain(timeout=30)
        assert batcher.stats.executed == 4
        # The failure was consumed by the raise; close() shuts down cleanly.
        batcher.close()

    def test_close_discard_outcomes_delivered_on_worker_threads(self):
        """Discarded-at-close outcomes use the normal worker delivery path.

        They used to be delivered on the thread calling ``close()``, so the
        threading (and exception-propagation) contract of an outcome
        callback depended on *when* its job was resolved — exactly what a
        future-resolving callback must not have to care about.
        """
        release = threading.Event()
        threads: dict[int, str] = {}
        lock = threading.Lock()

        def on_outcome(outcome: JobOutcome) -> None:
            with lock:
                threads[outcome.job.position] = threading.current_thread().name

        batcher = MicroBatcher(
            lambda job: release.wait(timeout=10),
            on_outcome,
            workers=1,
            max_batch=1,
            capacity=16,
        )
        batcher.submit(make_job(position=0))  # claimed by the worker
        time.sleep(0.1)
        for position in range(1, 5):
            batcher.submit(make_job(position=position))
        # Unpark the worker shortly *after* close() starts discarding, so
        # the discarded outcomes demonstrably ride the worker loop.
        threading.Timer(0.2, release.set).start()
        batcher.close(drain=False)
        assert sorted(threads) == [0, 1, 2, 3, 4]  # exactly once each
        closer = threading.current_thread().name
        assert all(name != closer for name in threads.values())
        assert all(name.startswith("repro-worker") for name in threads.values())

    def test_callback_errors_propagate_uniformly_across_delivery_paths(self):
        """A raising callback is wrapped the same way on every path.

        Worker-thread delivery, drop-oldest eviction and close-time discard
        must all surface as a deferred ``ServiceBackendError`` from the next
        ``drain()``/``close()`` — never synchronously from ``submit()`` or
        from the middle of ``close()``.
        """

        def bad_outcome(outcome):
            raise RuntimeError(f"boom-{outcome.job.position}")

        # Path 1: normal worker-thread delivery.
        batcher = MicroBatcher(lambda job: "ok", bad_outcome, workers=1)
        batcher.submit(make_job(position=0))
        with pytest.raises(ServiceBackendError, match="outcome callback"):
            batcher.drain(timeout=30)
        batcher.close()

        # Path 2: drop-oldest eviction (delivered on a worker).
        release = threading.Event()
        batcher = MicroBatcher(
            lambda job: release.wait(timeout=10),
            bad_outcome,
            workers=1,
            max_batch=1,
            capacity=1,
            policy="drop-oldest",
        )
        for position in range(4):
            batcher.submit(make_job(position=position))  # must never raise
        release.set()
        with pytest.raises(ServiceBackendError, match="outcome callback"):
            batcher.close()

        # Path 3: close-time discard of the pending queue.
        release = threading.Event()
        batcher = MicroBatcher(
            lambda job: release.wait(timeout=10),
            bad_outcome,
            workers=1,
            max_batch=1,
            capacity=16,
        )
        for position in range(4):
            batcher.submit(make_job(position=position))
        release.set()
        with pytest.raises(ServiceBackendError, match="outcome callback"):
            batcher.close(drain=False)

    def test_every_job_gets_exactly_one_outcome_across_drop_and_close(self):
        """Exactly-once outcome delivery under eviction pressure + discard."""
        release = threading.Event()
        seen: list[int] = []
        lock = threading.Lock()

        def on_outcome(outcome: JobOutcome) -> None:
            with lock:
                seen.append(outcome.job.position)

        batcher = MicroBatcher(
            lambda job: release.wait(timeout=10),
            on_outcome,
            workers=2,
            max_batch=2,
            capacity=3,
            policy="drop-oldest",
        )
        for position in range(20):
            batcher.submit(make_job(position=position))
        release.set()
        batcher.close(drain=False)
        assert sorted(seen) == list(range(20))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValidationError):
            MicroBatcher(lambda job: None, workers=0)
        with pytest.raises(ValidationError):
            MicroBatcher(lambda job: None, max_batch=0)
        with pytest.raises(ValidationError):
            MicroBatcher(lambda job: None, capacity=0)
        with pytest.raises(ValidationError):
            MicroBatcher(lambda job: None, policy="nope")
