"""Tests for the service's shared caches (repro.service.cache)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ks import ks_test
from repro.service.cache import LRUCache, SharedCaches, array_digest
from tests.conftest import make_failed_pair


class TestLRUCache:
    def test_get_put_roundtrip(self):
        cache = LRUCache(capacity=4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None
        assert cache.get("missing", -1) == -1

    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a": "b" becomes LRU
        cache.put("c", 3)
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache
        assert cache.stats.evictions == 1

    def test_put_refreshes_recency(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh by overwrite
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert "b" not in cache

    def test_hit_miss_stats(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("a")
        cache.get("nope")
        assert cache.stats.hits == 2
        assert cache.stats.misses == 1
        assert cache.stats.lookups == 3
        assert cache.stats.hit_rate == pytest.approx(2 / 3)

    def test_hit_rate_zero_when_unused(self):
        assert LRUCache(4).stats.hit_rate == 0.0

    def test_zero_capacity_disables_storage(self):
        cache = LRUCache(capacity=0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_capacity_bound_respected(self):
        cache = LRUCache(capacity=3)
        for i in range(10):
            cache.put(i, i)
        assert len(cache) == 3
        assert cache.stats.evictions == 7

    def test_get_or_compute_computes_once(self):
        cache = LRUCache(capacity=4)
        calls = {"count": 0}

        def factory():
            calls["count"] += 1
            return "value"

        assert cache.get_or_compute("k", factory) == "value"
        assert cache.get_or_compute("k", factory) == "value"
        assert calls["count"] == 1

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(capacity=-1)


class TestArrayDigest:
    def test_equal_content_shares_digest(self):
        first = np.array([1.0, 2.0, 3.0])
        second = np.array([1.0, 2.0, 3.0])
        assert first is not second
        assert array_digest(first) == array_digest(second)

    def test_different_content_differs(self):
        assert array_digest(np.array([1.0, 2.0])) != array_digest(np.array([2.0, 1.0]))


class TestSharedCachesKSTest:
    def test_matches_plain_ks_test_exactly(self, rng):
        caches = SharedCaches()
        for _ in range(5):
            reference, test = make_failed_pair(rng, 180, 150, shift_fraction=0.1)
            cached = caches.ks_test(reference, test, 0.05)
            plain = ks_test(reference, test, 0.05)
            assert cached.statistic == plain.statistic
            assert cached.threshold == plain.threshold
            assert cached.pvalue == plain.pvalue
            assert cached.rejected == plain.rejected

    def test_matches_on_passing_pairs(self, rng):
        caches = SharedCaches()
        sample = rng.normal(size=200)
        cached = caches.ks_test(sample, sample.copy(), 0.05)
        assert cached.passed
        assert cached.statistic == ks_test(sample, sample).statistic

    def test_reference_sorted_once_across_repeated_tests(self, rng):
        caches = SharedCaches()
        reference = rng.normal(size=200)
        for _ in range(4):
            caches.ks_test(reference, rng.normal(size=200), 0.05)
        stats = caches.sorted_references.stats
        assert stats.misses == 1
        assert stats.hits == 3

    def test_critical_value_cached_per_alpha_and_sizes(self, rng):
        caches = SharedCaches()
        reference = rng.normal(size=100)
        caches.ks_test(reference, rng.normal(size=100), 0.05)
        caches.ks_test(reference, rng.normal(size=100), 0.05)
        caches.ks_test(reference, rng.normal(size=100), 0.01)
        stats = caches.critical_values.stats
        assert stats.misses == 2  # one per alpha
        assert stats.hits == 1

    def test_overall_hit_rate_pools_all_caches(self, rng):
        caches = SharedCaches()
        assert caches.overall_hit_rate() == 0.0
        reference = rng.normal(size=100)
        caches.ks_test(reference, rng.normal(size=100), 0.05)
        caches.ks_test(reference, rng.normal(size=100), 0.05)
        assert 0.0 < caches.overall_hit_rate() < 1.0

    def test_stats_dict_is_json_friendly(self, rng):
        import json

        caches = SharedCaches()
        caches.ks_test(rng.normal(size=50), rng.normal(size=50), 0.05)
        payload = json.dumps(caches.stats_dict())
        assert "sorted_references" in payload
