"""Tests for the shared utilities (repro.utils)."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.exceptions import EmptyDatasetError
from repro.utils.ecdf import ecdf_rmse, ecdf_values, evaluate_ecdf
from repro.utils.rng import as_generator, spawn
from repro.utils.timing import Timer


class TestEcdf:
    def test_evaluate_ecdf_basic(self):
        sample = np.array([1.0, 2.0, 2.0, 3.0])
        points = np.array([0.5, 1.0, 2.0, 2.5, 3.0, 4.0])
        expected = np.array([0.0, 0.25, 0.75, 0.75, 1.0, 1.0])
        assert np.allclose(evaluate_ecdf(sample, points), expected)

    def test_evaluate_ecdf_empty_sample_rejected(self):
        with pytest.raises(EmptyDatasetError):
            evaluate_ecdf(np.array([]), np.array([1.0]))

    def test_ecdf_values_jump_points(self):
        xs, ys = ecdf_values(np.array([3.0, 1.0, 1.0]))
        assert np.array_equal(xs, [1.0, 3.0])
        assert np.allclose(ys, [2 / 3, 1.0])

    def test_rmse_zero_for_identical_samples(self, rng):
        sample = rng.normal(size=50)
        assert ecdf_rmse(sample, sample.copy()) == pytest.approx(0.0)

    def test_rmse_positive_for_shifted_samples(self, rng):
        assert ecdf_rmse(rng.normal(size=100), rng.normal(3.0, size=100)) > 0.3

    def test_rmse_symmetric_in_arguments(self, rng):
        a = rng.normal(size=60)
        b = rng.normal(0.5, size=40)
        assert ecdf_rmse(a, b) == pytest.approx(ecdf_rmse(b, a))

    def test_rmse_requires_non_empty(self, rng):
        with pytest.raises(EmptyDatasetError):
            ecdf_rmse(rng.normal(size=10), np.array([]))


class TestRng:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        assert as_generator(42).random() == as_generator(42).random()

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert as_generator(generator) is generator

    def test_spawn_children_are_independent_and_reproducible(self):
        children_a = spawn(np.random.default_rng(1), 3)
        children_b = spawn(np.random.default_rng(1), 3)
        assert len(children_a) == 3
        for a, b in zip(children_a, children_b):
            assert a.random() == b.random()
        draws = {round(child.random(), 12) for child in spawn(np.random.default_rng(2), 4)}
        assert len(draws) == 4


class TestTimer:
    def test_timer_measures_elapsed_time(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.009

    def test_timer_resets_on_reuse(self):
        timer = Timer()
        with timer:
            pass
        first = timer.elapsed
        with timer:
            time.sleep(0.01)
        assert timer.elapsed >= first
