"""Tests for the phase-1 size search (repro.core.size_search)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.brute_force import BruteForceExplainer
from repro.core.bounds import BoundsCalculator
from repro.core.cumulative import ExplanationProblem
from repro.core.size_search import explanation_size, lower_bound_size
from repro.exceptions import NoExplanationError


class TestLowerBound:
    def test_paper_example_lower_bound_is_two(self, paper_example):
        reference, test, alpha = paper_example
        problem = ExplanationProblem(reference, test, alpha)
        assert lower_bound_size(problem) == 2

    def test_lower_bound_never_exceeds_true_size(self, rng):
        for _ in range(5):
            reference = rng.normal(size=60)
            test = np.concatenate([rng.normal(size=45), rng.uniform(3, 5, size=15)])
            problem = ExplanationProblem(reference, test, 0.05, require_failed=False)
            if problem.initial_result.passed:
                continue
            lower = lower_bound_size(problem)
            exact = explanation_size(problem).size
            assert lower <= exact

    def test_lower_bound_is_smallest_satisfying_size(self, small_failed_problem):
        problem = small_failed_problem
        calculator = BoundsCalculator(problem)
        lower = lower_bound_size(problem, calculator)
        assert calculator.necessary_condition_holds(lower)
        if lower > 1:
            assert not calculator.necessary_condition_holds(lower - 1)


class TestExplanationSize:
    def test_paper_example_size_is_two(self, paper_example):
        reference, test, alpha = paper_example
        problem = ExplanationProblem(reference, test, alpha)
        assert explanation_size(problem).size == 2

    def test_matches_brute_force_on_small_instances(self, rng):
        checked = 0
        for seed in range(12):
            local = np.random.default_rng(seed)
            reference = local.normal(size=40)
            test = np.concatenate(
                [local.normal(size=5), local.uniform(3.0, 5.0, size=5)]
            )
            problem = ExplanationProblem(reference, test, 0.05, require_failed=False)
            if problem.initial_result.passed:
                continue
            checked += 1
            expected = BruteForceExplainer(alpha=0.05).explanation_size(reference, test)
            assert explanation_size(problem).size == expected
        assert checked >= 3

    def test_with_and_without_lower_bound_agree(self, small_failed_problem):
        fast = explanation_size(small_failed_problem, use_lower_bound=True)
        slow = explanation_size(small_failed_problem, use_lower_bound=False)
        assert fast.size == slow.size

    def test_lower_bound_pruning_checks_fewer_sizes(self, shifted_pair):
        reference, test = shifted_pair
        problem = ExplanationProblem(reference, test, 0.05)
        fast = explanation_size(problem, use_lower_bound=True)
        slow = explanation_size(problem, use_lower_bound=False)
        assert fast.sizes_checked <= slow.sizes_checked

    def test_estimation_error_non_negative(self, shifted_pair):
        reference, test = shifted_pair
        problem = ExplanationProblem(reference, test, 0.05)
        result = explanation_size(problem)
        assert result.estimation_error >= 0

    def test_removing_size_points_is_possible_but_fewer_is_not(self, small_failed_problem):
        problem = small_failed_problem
        calculator = BoundsCalculator(problem)
        size = explanation_size(problem, calculator=calculator).size
        assert calculator.qualified_vector_exists(size)
        if size > 1:
            assert not calculator.qualified_vector_exists(size - 1)

    def test_no_explanation_for_huge_alpha(self):
        # With an enormous significance level even tiny remainders cannot
        # pass, so the search must report failure rather than loop forever.
        reference = np.zeros(50)
        test = np.ones(10)
        problem = ExplanationProblem(reference, test, alpha=0.9999999)
        with pytest.raises(NoExplanationError):
            explanation_size(problem)
