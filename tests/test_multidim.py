"""Tests for the multidimensional KS extension (repro.multidim)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.preference import PreferenceList
from repro.exceptions import EmptyDatasetError, KSTestPassedError, ValidationError
from repro.multidim.explain2d import GreedyKS2DExplainer
from repro.multidim.fasano_franceschini import ks2d_statistic, ks2d_test


class TestKS2DStatistic:
    def test_identical_samples_have_small_statistic(self, rng):
        sample = rng.normal(size=(100, 2))
        assert ks2d_statistic(sample, sample) == pytest.approx(0.0, abs=1e-12)

    def test_separated_clouds_have_large_statistic(self, rng):
        first = rng.normal(size=(80, 2))
        second = rng.normal(size=(80, 2)) + 10.0
        assert ks2d_statistic(first, second) > 0.9

    def test_statistic_symmetric(self, rng):
        a = rng.normal(size=(40, 2))
        b = rng.normal(0.5, size=(50, 2))
        assert ks2d_statistic(a, b) == pytest.approx(ks2d_statistic(b, a))

    def test_statistic_in_unit_interval(self, rng):
        a = rng.uniform(size=(30, 2))
        b = rng.uniform(size=(45, 2))
        assert 0.0 <= ks2d_statistic(a, b) <= 1.0

    def test_invalid_shapes_rejected(self, rng):
        with pytest.raises(ValidationError):
            ks2d_statistic(rng.normal(size=(10, 3)), rng.normal(size=(10, 2)))
        with pytest.raises(EmptyDatasetError):
            ks2d_statistic(np.empty((0, 2)), rng.normal(size=(10, 2)))


class TestKS2DTest:
    def test_same_distribution_passes(self, rng):
        first = rng.normal(size=(200, 2))
        second = rng.normal(size=(200, 2))
        assert ks2d_test(first, second, alpha=0.01).passed

    def test_shifted_distribution_fails(self, rng):
        first = rng.normal(size=(200, 2))
        second = rng.normal(size=(200, 2)) + np.array([2.0, 0.0])
        result = ks2d_test(first, second, alpha=0.05)
        assert result.rejected
        assert result.pvalue < 0.05

    def test_invalid_alpha_rejected(self, rng):
        with pytest.raises(ValidationError):
            ks2d_test(rng.normal(size=(10, 2)), rng.normal(size=(10, 2)), alpha=2.0)

    def test_result_records_sizes(self, rng):
        result = ks2d_test(rng.normal(size=(30, 2)), rng.normal(size=(40, 2)))
        assert (result.n, result.m) == (30, 40)


class TestGreedyKS2DExplainer:
    def test_explanation_reverses_failed_2d_test(self, rng):
        reference = rng.normal(size=(150, 2))
        test = np.vstack([rng.normal(size=(120, 2)), rng.normal(4.0, 0.3, size=(30, 2))])
        explainer = GreedyKS2DExplainer(alpha=0.05)
        explanation = explainer.explain(reference, test)
        assert explanation.reverses_test
        assert 0 < explanation.size < test.shape[0]

    def test_explanation_targets_outlying_cluster(self, rng):
        reference = rng.normal(size=(150, 2))
        test = np.vstack([rng.normal(size=(130, 2)), rng.normal(5.0, 0.2, size=(20, 2))])
        # Domain knowledge: points far from the reference centroid are more
        # suspicious, so they head the preference list.
        distances = np.linalg.norm(test - reference.mean(axis=0), axis=1)
        preference = PreferenceList.from_scores(distances, descending=True, seed=0)
        explanation = GreedyKS2DExplainer(alpha=0.05).explain(reference, test, preference)
        outlier_indices = set(range(130, 150))
        overlap = len(set(explanation.indices.tolist()) & outlier_indices)
        assert overlap >= 0.5 * explanation.size

    def test_preference_is_respected_in_candidate_order(self, rng):
        reference = rng.normal(size=(100, 2))
        test = np.vstack([rng.normal(size=(80, 2)), rng.normal(4.0, 0.3, size=(20, 2))])
        preference = PreferenceList.from_order(list(range(test.shape[0]))[::-1])
        explanation = GreedyKS2DExplainer(alpha=0.05).explain(reference, test, preference)
        assert explanation.reverses_test

    def test_passed_test_raises(self, rng):
        sample = rng.normal(size=(100, 2))
        with pytest.raises(KSTestPassedError):
            GreedyKS2DExplainer().explain(sample, sample.copy())

    def test_invalid_candidate_pool_rejected(self):
        with pytest.raises(ValidationError):
            GreedyKS2DExplainer(candidate_pool=0)
