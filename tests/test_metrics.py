"""Tests for the evaluation metrics (repro.metrics)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.explanation import Explanation
from repro.core.ks import KSTestResult
from repro.exceptions import ValidationError
from repro.metrics.conciseness import is_smallest_explanation, mean_ise
from repro.metrics.contrastivity import reverse_factor
from repro.metrics.effectiveness import explanation_rmse, mean_rmse
from repro.metrics.estimation import estimation_error, estimation_error_summary


def make_explanation(
    size: int,
    reverses: bool = True,
    method: str = "method",
    m: int = 100,
    lower_bound: int | None = None,
) -> Explanation:
    before = KSTestResult(statistic=0.4, threshold=0.2, alpha=0.05, n=100, m=m, pvalue=0.0)
    after_stat = 0.1 if reverses else 0.3
    after = KSTestResult(statistic=after_stat, threshold=0.2, alpha=0.05, n=100, m=m - size, pvalue=0.5)
    return Explanation(
        indices=np.arange(size),
        values=np.zeros(size),
        method=method,
        alpha=0.05,
        ks_before=before,
        ks_after=after,
        size_lower_bound=lower_bound,
    )


class TestISE:
    def test_smallest_reversing_explanation_gets_one(self):
        explanations = {
            "moche": make_explanation(5),
            "greedy": make_explanation(20),
            "d3": make_explanation(5),
        }
        indicators = is_smallest_explanation(explanations)
        assert indicators == {"moche": 1, "greedy": 0, "d3": 1}

    def test_non_reversing_explanations_never_win(self):
        explanations = {
            "moche": make_explanation(8),
            "cs": make_explanation(2, reverses=False),
        }
        assert is_smallest_explanation(explanations) == {"moche": 1, "cs": 0}

    def test_all_non_reversing_gives_all_zero(self):
        explanations = {"a": make_explanation(3, reverses=False)}
        assert is_smallest_explanation(explanations) == {"a": 0}

    def test_empty_input_rejected(self):
        with pytest.raises(ValidationError):
            is_smallest_explanation({})

    def test_mean_ise_averages_over_eligible_tests(self):
        per_test = [
            {"moche": make_explanation(5), "greedy": make_explanation(9)},
            {"moche": make_explanation(4), "greedy": make_explanation(4)},
        ]
        averages = mean_ise(per_test)
        assert averages["moche"] == pytest.approx(1.0)
        assert averages["greedy"] == pytest.approx(0.5)

    def test_mean_ise_skips_tests_with_aborted_methods(self):
        per_test = [
            {"moche": make_explanation(5), "cs": make_explanation(3, reverses=False)},
            {"moche": make_explanation(5), "cs": make_explanation(7)},
        ]
        averages = mean_ise(per_test)
        # Only the second test counts; CS loses there.
        assert averages["moche"] == pytest.approx(1.0)
        assert averages["cs"] == pytest.approx(0.0)

    def test_mean_ise_empty_rejected(self):
        with pytest.raises(ValidationError):
            mean_ise([])


class TestReverseFactor:
    def test_fraction_of_reversing_explanations(self):
        explanations = [
            make_explanation(3),
            make_explanation(3, reverses=False),
            make_explanation(3),
            make_explanation(3),
        ]
        assert reverse_factor(explanations) == pytest.approx(0.75)

    def test_all_reversing_gives_one(self):
        assert reverse_factor([make_explanation(2)] * 5) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            reverse_factor([])


class TestRMSE:
    def test_rmse_decreases_after_removing_good_explanation(self, rng):
        reference = rng.normal(size=400)
        test = np.concatenate([rng.normal(size=350), rng.normal(4.0, 0.3, size=50)])
        good = Explanation(
            indices=np.arange(350, 400),
            values=test[350:],
            method="oracle",
            alpha=0.05,
            ks_before=KSTestResult(0.3, 0.1, 0.05, 400, 400, 0.0),
            ks_after=KSTestResult(0.05, 0.1, 0.05, 400, 350, 0.5),
        )
        empty = Explanation(
            indices=np.array([], dtype=int),
            values=np.array([]),
            method="noop",
            alpha=0.05,
            ks_before=KSTestResult(0.3, 0.1, 0.05, 400, 400, 0.0),
            ks_after=KSTestResult(0.3, 0.1, 0.05, 400, 400, 0.0),
        )
        assert explanation_rmse(reference, test, good) < explanation_rmse(reference, test, empty)

    def test_rmse_rejects_mismatched_indices(self, rng):
        reference = rng.normal(size=50)
        test = rng.normal(size=40)
        bad = make_explanation(3)
        bad.indices = np.array([100])
        with pytest.raises(ValidationError):
            explanation_rmse(reference, test, bad)

    def test_rmse_rejects_full_removal(self, rng):
        reference = rng.normal(size=10)
        test = rng.normal(size=5)
        explanation = make_explanation(5, m=5)
        with pytest.raises(ValidationError):
            explanation_rmse(reference, test, explanation)

    def test_mean_rmse(self):
        assert mean_rmse([0.1, 0.3]) == pytest.approx(0.2)
        with pytest.raises(ValidationError):
            mean_rmse([])


class TestEstimationError:
    def test_error_from_moche_explanation(self):
        explanation = make_explanation(6, lower_bound=4)
        assert estimation_error(explanation) == 2

    def test_error_requires_lower_bound(self):
        with pytest.raises(ValidationError):
            estimation_error(make_explanation(6))

    def test_summary_statistics(self):
        summary = estimation_error_summary([0, 0, 1, 1, 2, 6])
        assert summary.count == 6
        assert summary.minimum == 0
        assert summary.maximum == 6
        assert summary.median == pytest.approx(1.0)
        assert summary.mean == pytest.approx(10 / 6)
        row = summary.as_row()
        assert row["q1"] <= row["median"] <= row["q3"]

    def test_summary_empty_rejected(self):
        with pytest.raises(ValidationError):
            estimation_error_summary([])
