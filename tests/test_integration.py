"""End-to-end integration tests across modules.

These tests glue several subsystems together the way a downstream user
would: generate a dataset, detect failed tests via sliding windows, build
preference lists from outlier scores, explain with MOCHE and the baselines,
evaluate with the metrics, and export the results.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.baselines import GreedyExplainer
from repro.core.batch import BatchExplainer, windows_to_items
from repro.core.moche import MOCHE
from repro.core.preference import PreferenceList
from repro.datasets.covid import generate_covid_like_dataset
from repro.datasets.nab import generate_family
from repro.datasets.sliding_window import failed_window_pairs
from repro.drift.monitor import ExplainedDriftMonitor
from repro.io.export import save_explanation
from repro.metrics.conciseness import is_smallest_explanation
from repro.metrics.effectiveness import explanation_rmse
from repro.outliers.spectral_residual import SpectralResidual


class TestTimeSeriesPipeline:
    def test_detect_explain_evaluate_export(self, tmp_path):
        """Full pipeline on a generated ART series."""
        dataset = generate_family("ART", seed=21, series_count=1)
        series = dataset.series[0]
        failed = failed_window_pairs(series, window_size=250, require_anomaly=True)
        assert failed, "the generated ART series must produce failed KS tests"
        pair = failed[0]

        scores = SpectralResidual().scores(
            np.concatenate([pair.reference, pair.test])
        )[-pair.test.size:]
        preference = PreferenceList.from_scores(scores, descending=True, seed=0)

        moche = MOCHE(alpha=0.05).explain(pair.reference, pair.test, preference)
        greedy = GreedyExplainer(alpha=0.05).explain(pair.reference, pair.test, preference)

        # The metrics agree with MOCHE's guarantees.
        indicators = is_smallest_explanation({"moche": moche, "greedy": greedy})
        assert indicators["moche"] == 1
        assert explanation_rmse(pair.reference, pair.test, moche) <= 1.0

        # Export round-trip.
        path = save_explanation(moche, tmp_path / "alarm.json")
        payload = json.loads(path.read_text())
        assert payload["size"] == moche.size
        assert payload["reverses_test"] is True

    def test_batch_over_all_failed_windows_of_a_series(self):
        dataset = generate_family("AWS", seed=22, series_count=1, length_scale=0.5)
        series = dataset.series[0]
        pairs = failed_window_pairs(series, window_size=150)
        if not pairs:
            pytest.skip("no failed windows in this generated series")
        batch = BatchExplainer(alpha=0.05)
        batch.run(windows_to_items(pairs))
        summary = batch.summary()
        assert summary.explained_pairs == len(pairs)
        assert all(e.reverses_test for e in batch.explanations())
        assert 0 < summary.mean_fraction < 1


class TestCovidPipeline:
    def test_two_preferences_two_explanations_one_size(self):
        dataset = generate_covid_like_dataset(
            seed=33, reference_size=600, test_size=900
        )
        reference, test = dataset.reference_values, dataset.test_values
        explainer = MOCHE(alpha=0.05)
        by_population = explainer.explain(reference, test, dataset.population_preference(seed=0))
        by_age = explainer.explain(reference, test, dataset.age_preference(seed=0))

        assert by_population.size == by_age.size
        assert by_population.reverses_test and by_age.reverses_test
        # L_p concentrates on the largest health authority.
        ha_counts = dataset.ha_histogram(by_population.indices)
        assert ha_counts["FHA"] == by_population.size
        # L_a prefers seniors: its minimum selected age group is at least as
        # old as L_p's minimum.
        assert by_age.values.min() >= by_population.values.min()

    def test_explanation_overlaps_injected_ground_truth(self):
        dataset = generate_covid_like_dataset(seed=34, reference_size=800, test_size=1200)
        explainer = MOCHE(alpha=0.05)
        explanation = explainer.explain(
            dataset.reference_values,
            dataset.test_values,
            dataset.population_preference(seed=0),
        )
        injected = set(dataset.injected_test_indices.tolist())
        overlap = len(set(explanation.indices.tolist()) & injected)
        # Most of the explanation comes from the injected September excess.
        assert overlap >= 0.5 * explanation.size


class TestStreamingPipeline:
    def test_monitor_alarms_can_be_serialised(self, tmp_path, rng):
        stream = np.concatenate([rng.normal(size=700), rng.normal(3.0, 1.0, size=700)])
        monitor = ExplainedDriftMonitor(window_size=200, alpha=0.05)
        alarms = list(monitor.process(stream))
        assert alarms
        for index, alarm in enumerate(alarms):
            path = save_explanation(alarm.explanation, tmp_path / f"alarm_{index}.json")
            assert json.loads(path.read_text())["reverses_test"] is True

    def test_monitor_and_batch_agree(self, rng):
        """The monitor's explanation equals a direct MOCHE call on the same windows."""
        stream = np.concatenate([rng.normal(size=500), rng.normal(4.0, 0.5, size=300)])
        monitor = ExplainedDriftMonitor(window_size=150, alpha=0.05)
        alarms = list(monitor.process(stream))
        assert alarms
        alarm = alarms[0]
        direct = MOCHE(alpha=0.05).explain(
            alarm.alarm.reference,
            alarm.alarm.test,
            monitor.preference_builder(alarm.alarm.reference, alarm.alarm.test),
        )
        assert direct.size == alarm.explanation.size
        assert np.array_equal(np.sort(direct.indices), np.sort(alarm.explanation.indices))
