"""End-to-end tests for the multi-stream explanation service."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.datasets.synthetic import drifting_series
from repro.drift.monitor import ExplainedDriftMonitor
from repro.exceptions import ValidationError
from repro.io.export import save_service_report, service_report_to_json
from repro.service import (
    ExplanationService,
    SharedCaches,
    StreamConfig,
    StreamRegistry,
)


@pytest.fixture
def drifted_values() -> np.ndarray:
    values, _ = drifting_series(length=1200, drift_start=600, drift_magnitude=3.0, seed=5)
    return values


class TestRegistry:
    def test_register_and_lookup(self):
        registry = StreamRegistry()
        state = registry.register("s1", StreamConfig(window_size=50))
        assert registry.get("s1") is state
        assert "s1" in registry
        assert registry.ids() == ["s1"]

    def test_duplicate_registration_rejected(self):
        registry = StreamRegistry()
        registry.register("s1")
        with pytest.raises(ValidationError):
            registry.register("s1")

    def test_unknown_stream_rejected(self):
        with pytest.raises(ValidationError):
            StreamRegistry().get("nope")

    def test_remove_returns_final_state(self):
        registry = StreamRegistry()
        registry.register("s1")
        state = registry.remove("s1")
        assert state.stream_id == "s1"
        assert "s1" not in registry

    def test_invalid_config_rejected(self):
        with pytest.raises(ValidationError):
            StreamConfig(window_size=1)
        with pytest.raises(ValidationError):
            StreamConfig(alpha=5.0)
        with pytest.raises(ValidationError):
            StreamConfig(alpha=0.0)
        with pytest.raises(ValidationError):
            StreamConfig(detector="nope")
        with pytest.raises(ValidationError):
            StreamConfig(preference="nope")
        with pytest.raises(ValidationError):
            StreamConfig(method="nope")

    def test_custom_callables_are_not_cacheable(self):
        assert StreamConfig().cacheable
        assert not StreamConfig(preference=lambda r, t: None).cacheable


class TestServiceEndToEnd:
    def test_matches_naive_monitor_across_streams(self, drifted_values):
        """The service must produce exactly the alarms of the one-shot pipeline."""
        naive = ExplainedDriftMonitor(window_size=150, alpha=0.05)
        expected = list(naive.process(drifted_values))
        assert expected  # the workload must actually drift

        with ExplanationService(
            workers=2, default_config=StreamConfig(window_size=150)
        ) as service:
            for stream_id in ("a", "b", "c"):
                service.register(stream_id)
            for start in range(0, drifted_values.size, 100):
                chunk = drifted_values[start:start + 100]
                for stream_id in ("a", "b", "c"):
                    service.submit(stream_id, chunk)
            report = service.report()

        assert len(report.streams) == 3
        for stream in report.streams:
            assert stream.observations == drifted_values.size
            assert stream.alarms_raised == len(expected)
            assert stream.explained == len(expected)
            stream_alarms = sorted(stream.alarms, key=lambda alarm: alarm.position)
            for alarm, reference in zip(stream_alarms, expected):
                assert alarm.position == reference.position
                assert alarm.result.statistic == reference.alarm.result.statistic
                assert np.array_equal(
                    alarm.explanation.indices, reference.explanation.indices
                )
                assert alarm.explanation.reverses_test

    def test_replicated_streams_share_cached_explanations(self, drifted_values):
        with ExplanationService(
            workers=1, default_config=StreamConfig(window_size=150)
        ) as service:
            for stream_id in ("a", "b", "c", "d"):
                service.register(stream_id)
            # Sequential replay: stream "a" warms every cache for the rest.
            # Draining between streams makes the hit pattern deterministic
            # (no coalescing races to account for).
            for stream_id in ("a", "b", "c", "d"):
                service.submit(stream_id, drifted_values)
                service.drain()
            report = service.report()

        assert report.alarms_raised >= 4
        explanation_stats = report.cache_stats["explanations"]
        assert explanation_stats["hits"] > 0
        assert report.cache_hit_rate > 0
        cached = [
            alarm
            for stream in report.streams
            for alarm in stream.alarms
            if alarm.from_cache
        ]
        assert len(cached) >= 3  # every replica after the first reuses the work

    def test_incremental_detector_raises_earlier(self, drifted_values):
        with ExplanationService(workers=1) as service:
            service.register(
                "windowed", StreamConfig(window_size=150, detector="windowed")
            )
            service.register(
                "incremental",
                StreamConfig(window_size=150, detector="incremental", stride=5),
            )
            service.submit("windowed", drifted_values)
            service.submit("incremental", drifted_values)
            report = service.report()
        by_id = {stream.stream_id: stream for stream in report.streams}
        assert by_id["incremental"].alarms_raised >= 1
        assert by_id["windowed"].alarms_raised >= 1
        # Per-observation testing fires closer to the true drift onset (600).
        assert (
            by_id["incremental"].alarms[0].position
            <= by_id["windowed"].alarms[0].position
        )

    def test_register_with_inline_overrides(self, drifted_values):
        with ExplanationService(default_config=StreamConfig(window_size=150)) as service:
            state = service.register("s", alpha=0.01, method="greedy")
            assert state.config.alpha == 0.01
            assert state.config.method == "greedy"
            assert state.config.window_size == 150
            service.submit("s", drifted_values)
            report = service.report()
        assert report.streams[0].alarms_raised >= 1
        for alarm in report.streams[0].alarms:
            assert alarm.explanation.method == "greedy"

    def test_submit_to_unknown_stream_rejected(self):
        with ExplanationService() as service:
            with pytest.raises(ValidationError):
                service.submit("nope", [1.0, 2.0])

    def test_custom_preference_builder_runs_uncached(self, drifted_values):
        from repro.drift.monitor import spectral_residual_preference

        calls = {"count": 0}

        def builder(reference, test):
            calls["count"] += 1
            return spectral_residual_preference(reference, test)

        with ExplanationService(workers=1) as service:
            service.register("s", StreamConfig(window_size=150, preference=builder))
            service.submit("s", drifted_values)
            report = service.report()
        assert report.streams[0].alarms_raised >= 1
        assert calls["count"] == report.streams[0].alarms_raised

    def test_alarm_log_bounded_per_stream(self, drifted_values):
        with ExplanationService(
            default_config=StreamConfig(window_size=150),
            max_alarms_per_stream=1,
        ) as service:
            service.register("s", detector="incremental", stride=10)
            service.submit("s", drifted_values)
            report = service.report()
        stream = report.streams[0]
        assert stream.alarms_raised >= 2  # incremental mode re-alarms
        assert len(stream.alarms) == 1  # log bounded, counters complete
        assert stream.explained == stream.alarms_raised

    def test_shared_caches_can_be_injected(self, drifted_values):
        caches = SharedCaches(explanations=4)
        with ExplanationService(
            caches=caches, default_config=StreamConfig(window_size=150)
        ) as service:
            service.register("s")
            service.submit("s", drifted_values)
            service.report()
        assert caches.explanations.stats.misses >= 1


class TestServiceReport:
    @pytest.fixture
    def report(self, drifted_values):
        with ExplanationService(
            workers=2, default_config=StreamConfig(window_size=150)
        ) as service:
            service.register("s1")
            service.register("s2")
            service.submit("s1", drifted_values)
            service.submit("s2", drifted_values)
            return service.report()

    def test_to_dict_is_json_serialisable(self, report):
        payload = json.loads(service_report_to_json(report))
        assert payload["totals"]["streams"] == 2
        assert payload["totals"]["observations"] == report.observations
        assert {stream["stream_id"] for stream in payload["streams"]} == {"s1", "s2"}
        first_alarm = payload["streams"][0]["alarms"][0]
        assert first_alarm["result"]["rejected"] is True
        assert first_alarm["explanation"]["reverses_test"] is True

    def test_render_mentions_every_stream(self, report):
        text = report.render()
        assert "Explanation service report" in text
        assert "s1" in text and "s2" in text
        assert "drift alarm at observation" in text

    def test_save_service_report_json_and_txt(self, report, tmp_path):
        json_path = save_service_report(report, tmp_path / "report.json")
        payload = json.loads(json_path.read_text())
        assert payload["totals"]["alarms_raised"] == report.alarms_raised

        txt_path = save_service_report(report, tmp_path / "report.txt")
        assert "Explanation service report" in txt_path.read_text()

        with pytest.raises(ValidationError):
            save_service_report(report, tmp_path / "report.xml")

    def test_throughput_positive(self, report):
        assert report.throughput > 0
        assert report.elapsed_seconds > 0
