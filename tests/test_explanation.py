"""Tests for the Explanation result object (repro.core.explanation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.explanation import Explanation
from repro.core.ks import KSTestResult


def make_result(statistic: float, threshold: float, n: int = 100, m: int = 80) -> KSTestResult:
    return KSTestResult(
        statistic=statistic, threshold=threshold, alpha=0.05, n=n, m=m, pvalue=0.01
    )


@pytest.fixture
def explanation() -> Explanation:
    return Explanation(
        indices=np.array([3, 1, 7]),
        values=np.array([5.0, 2.0, 9.0]),
        method="moche",
        alpha=0.05,
        ks_before=make_result(0.3, 0.1),
        ks_after=make_result(0.05, 0.11),
        size_lower_bound=2,
        sizes_checked=2,
        runtime_seconds=0.01,
    )


class TestExplanation:
    def test_size_and_len(self, explanation):
        assert explanation.size == 3
        assert len(explanation) == 3

    def test_reverses_test(self, explanation):
        assert explanation.reverses_test

    def test_non_reversing_when_after_still_fails(self, explanation):
        failing = Explanation(
            indices=explanation.indices,
            values=explanation.values,
            method="greedy",
            alpha=0.05,
            ks_before=make_result(0.3, 0.1),
            ks_after=make_result(0.2, 0.1),
        )
        assert not failing.reverses_test

    def test_non_reversing_when_after_missing(self, explanation):
        missing = Explanation(
            indices=explanation.indices,
            values=explanation.values,
            method="corner_search",
            alpha=0.05,
            ks_before=make_result(0.3, 0.1),
            ks_after=None,
            converged=False,
        )
        assert not missing.reverses_test
        assert not missing.converged

    def test_fraction_of_test_set(self, explanation):
        assert explanation.fraction_of_test_set == pytest.approx(3 / 80)

    def test_estimation_error(self, explanation):
        assert explanation.estimation_error == 1

    def test_estimation_error_none_without_lower_bound(self, explanation):
        baseline = Explanation(
            indices=explanation.indices,
            values=explanation.values,
            method="greedy",
            alpha=0.05,
            ks_before=make_result(0.3, 0.1),
            ks_after=make_result(0.05, 0.11),
        )
        assert baseline.estimation_error is None

    def test_summary_mentions_method_and_status(self, explanation):
        summary = explanation.summary()
        assert "moche" in summary
        assert "reverses" in summary

    def test_indices_and_values_coerced_to_arrays(self):
        explanation = Explanation(
            indices=[1, 2],
            values=[3.0, 4.0],
            method="moche",
            alpha=0.05,
            ks_before=make_result(0.3, 0.1),
            ks_after=make_result(0.05, 0.11),
        )
        assert explanation.indices.dtype == np.int64
        assert explanation.values.dtype == float
