"""Property-based tests for the explanation-space analysis tools."""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core.analysis import enumerate_explanations, relevant_points
from repro.core.cumulative import ExplanationProblem
from repro.core.ks import ks_test
from repro.core.preference import PreferenceList
from repro.core.size_search import explanation_size

values = st.integers(min_value=0, max_value=10).map(float)
reference_sets = st.lists(values, min_size=4, max_size=25)
test_sets = st.lists(values, min_size=3, max_size=8)

SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


def failed_problem_or_none(reference, test, alpha=0.2):
    reference = np.asarray(reference, dtype=float)
    test = np.asarray(test, dtype=float)
    if ks_test(reference, test, alpha).passed:
        return None
    return ExplanationProblem(reference, test, alpha)


class TestAnalysisProperties:
    @SETTINGS
    @given(reference_sets, test_sets)
    def test_every_enumerated_explanation_reverses_and_has_size_k(self, reference, test):
        problem = failed_problem_or_none(reference, test)
        assume(problem is not None)
        size = explanation_size(problem).size
        explanations = list(enumerate_explanations(problem, limit=20))
        assert explanations
        for explanation in explanations:
            assert explanation.size == size
            assert problem.is_reversing_subset(explanation)

    @SETTINGS
    @given(reference_sets, test_sets)
    def test_enumerated_explanations_are_distinct(self, reference, test):
        problem = failed_problem_or_none(reference, test)
        assume(problem is not None)
        seen = [tuple(sorted(e.tolist())) for e in enumerate_explanations(problem, limit=25)]
        assert len(seen) == len(set(seen))

    @SETTINGS
    @given(reference_sets, test_sets)
    def test_relevant_points_cover_every_enumerated_explanation(self, reference, test):
        problem = failed_problem_or_none(reference, test)
        assume(problem is not None)
        mask = relevant_points(problem)
        for explanation in enumerate_explanations(problem, limit=20):
            assert mask[explanation].all()

    @SETTINGS
    @given(reference_sets, test_sets, st.integers(min_value=0, max_value=50))
    def test_first_enumerated_matches_moche_for_any_preference(self, reference, test, seed):
        problem = failed_problem_or_none(reference, test)
        assume(problem is not None)
        preference = PreferenceList.random(problem.m, seed=seed)
        first = next(iter(enumerate_explanations(problem, preference)))
        from repro.core.moche import explain_ks_failure

        moche = explain_ks_failure(problem.reference, problem.test, problem.alpha, preference)
        assert set(first.tolist()) == set(moche.indices.tolist())
