"""Elastic shard rebalancing: state migration, invariants and autoscaling.

Covers the rebalance invariants the resize machinery must hold:

* detector ``state_dict``/``load_state_dict`` round-trips resume a stream
  exactly where it left off (property-tested per detector flavour);
* a ``resize(N -> N±1)`` moves only ~1/N of the streams (the consistent
  hash ring's guarantee, observed end to end through the executor);
* no observation is lost or double-processed across a live migration, and
  the three executor backends stay report-parity through a resize;
* crashed-shard handling records the data loss (``restarts`` /
  ``state_lost``) instead of hiding it, and a shard past its restart
  budget is retired with its streams redistributed to survivors;
* worker-side cache statistics are merged into the parent report;
* the queue-depth autoscaler policy scales between its bounds with
  hysteresis and cooldown.
"""

from __future__ import annotations

import json
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Autoscaler, HashRing, QueueDepthPolicy
from repro.cluster.sharding import ProcessShardExecutor
from repro.cluster.wire import MigrateOut, WorkerFailure
from repro.datasets.synthetic import drifting_series
from repro.drift.detector import IncrementalKSDetector, KSDriftDetector
from repro.exceptions import ServiceBackendError, ValidationError
from repro.multidim.detector import KS2DDriftDetector
from repro.service import ExplanationService, StreamConfig

STREAM_IDS = ("a", "b", "c", "d", "e", "f")


@pytest.fixture(scope="module")
def drifted_values() -> np.ndarray:
    values, _ = drifting_series(length=1200, drift_start=600, drift_magnitude=3.0, seed=5)
    return values


def replay(
    executor: str,
    values: np.ndarray,
    resize_at: dict[int, int] | None = None,
    chunk: int = 100,
    **kwargs,
):
    """Interleaved fleet replay with optional mid-replay resizes."""
    with ExplanationService(
        executor=executor,
        default_config=StreamConfig(window_size=150),
        **kwargs,
    ) as service:
        for stream_id in STREAM_IDS:
            service.register(stream_id)
        for index, start in enumerate(range(0, values.size, chunk)):
            if resize_at and index in resize_at:
                service.resize(resize_at[index])
            for stream_id in STREAM_IDS:
                service.submit(stream_id, values[start:start + chunk])
        return service.report()


# ----------------------------------------------------------------------
# Detector state round-trips
# ----------------------------------------------------------------------
finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestDetectorStateRoundTrip:
    """After any prefix, snapshot+restore must not change future behaviour."""

    @settings(max_examples=25, deadline=None)
    @given(st.lists(finite_floats, min_size=1, max_size=60), st.data())
    def test_windowed_detector(self, values, data):
        cut = data.draw(st.integers(min_value=0, max_value=len(values)))
        original = KSDriftDetector(window_size=8, alpha=0.2)
        for value in values[:cut]:
            original.update(value)
        restored = KSDriftDetector(window_size=8, alpha=0.2)
        restored.load_state_dict(original.state_dict())
        tail = values[cut:]
        alarms_a = [a.position for v in tail if (a := original.update(v)) is not None]
        alarms_b = [a.position for v in tail if (a := restored.update(v)) is not None]
        assert alarms_a == alarms_b
        assert original.tests_run == restored.tests_run
        assert original.observations_seen == restored.observations_seen

    @settings(max_examples=25, deadline=None)
    @given(st.lists(finite_floats, min_size=1, max_size=60), st.data())
    def test_incremental_detector(self, values, data):
        cut = data.draw(st.integers(min_value=0, max_value=len(values)))
        original = IncrementalKSDetector(window_size=8, alpha=0.2, stride=2)
        for value in values[:cut]:
            original.update(value)
        restored = IncrementalKSDetector(window_size=8, alpha=0.2, stride=2)
        restored.load_state_dict(original.state_dict())
        tail = values[cut:]
        alarms_a = [a.position for v in tail if (a := original.update(v)) is not None]
        alarms_b = [a.position for v in tail if (a := restored.update(v)) is not None]
        assert alarms_a == alarms_b
        assert original.tests_run == restored.tests_run

    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(st.tuples(finite_floats, finite_floats), min_size=1, max_size=40),
        st.data(),
    )
    def test_ks2d_detector(self, points, data):
        cut = data.draw(st.integers(min_value=0, max_value=len(points)))
        original = KS2DDriftDetector(window_size=5, alpha=0.2)
        for point in points[:cut]:
            original.update(point)
        restored = KS2DDriftDetector(window_size=5, alpha=0.2)
        restored.load_state_dict(original.state_dict())
        tail = points[cut:]
        alarms_a = [a.position for p in tail if (a := original.update(p)) is not None]
        alarms_b = [a.position for p in tail if (a := restored.update(p)) is not None]
        assert alarms_a == alarms_b
        assert original.tests_run == restored.tests_run

    def test_kind_mismatch_rejected(self):
        windowed = KSDriftDetector(window_size=8)
        incremental = IncrementalKSDetector(window_size=8)
        with pytest.raises(ValidationError):
            incremental.load_state_dict(windowed.state_dict())
        with pytest.raises(ValidationError):
            KS2DDriftDetector(window_size=8).load_state_dict(windowed.state_dict())

    def test_state_dicts_are_json_serialisable(self):
        detector = KSDriftDetector(window_size=4)
        for value in (0.0, 1.0, 2.0, 3.0, 4.0):
            detector.update(value)
        assert json.loads(json.dumps(detector.state_dict())) == detector.state_dict()


# ----------------------------------------------------------------------
# Ring movement bound
# ----------------------------------------------------------------------
class TestMovedFractionBound:
    @pytest.mark.parametrize("shards", [2, 3, 4])
    def test_adding_a_shard_moves_a_bounded_fraction(self, shards):
        keys = [f"stream-{i}" for i in range(400)]
        ring = HashRing([f"shard-{i}" for i in range(shards)])
        before = {key: ring.shard_for(key) for key in keys}
        ring.add(f"shard-{shards}")
        moved = sum(ring.shard_for(key) != before[key] for key in keys)
        expected = len(keys) / (shards + 1)
        assert 0 < moved <= 2.5 * expected
        # Every moved key lands on the newcomer: nothing shuffles between
        # surviving shards.
        for key in keys:
            if ring.shard_for(key) != before[key]:
                assert ring.shard_for(key) == f"shard-{shards}"


# ----------------------------------------------------------------------
# Live migration invariants (process executor)
# ----------------------------------------------------------------------
class TestLiveResize:
    def test_resize_parity_and_no_loss(self, drifted_values):
        """A 2->3->2 mid-replay resize changes nothing observable."""
        inline = replay("inline", drifted_values)
        assert inline.alarms_raised > 0
        elastic = replay(
            "process", drifted_values, shards=2, resize_at={4: 3, 8: 2}
        )
        assert json.dumps(elastic.canonical_dict(), sort_keys=True) == json.dumps(
            inline.canonical_dict(), sort_keys=True
        )
        # Migrated cleanly: nothing lost, nothing double-processed.
        stats = elastic.batcher_stats
        assert stats["resizes"] == 2
        assert stats["migrated_streams"] >= 1
        assert stats["lost_chunks"] == 0
        assert elastic.state_lost == [] and elastic.restarts == 0
        for stream in elastic.streams:
            assert stream.observations == drifted_values.size

    def test_resize_moves_only_the_rings_share_of_streams(self, drifted_values):
        with ExplanationService(
            executor="process", shards=2, default_config=StreamConfig(window_size=150)
        ) as service:
            ids = [f"s-{i:02d}" for i in range(20)]
            for stream_id in ids:
                service.register(stream_id)
            executor = service.executor
            before = {stream_id: executor.shard_of(stream_id) for stream_id in ids}
            assert service.resize(3) == 3
            after = {stream_id: executor.shard_of(stream_id) for stream_id in ids}
            moved = [stream_id for stream_id in ids if after[stream_id] != before[stream_id]]
            # ~1/3 expected to move onto the newcomer; bound with slack.
            assert len(moved) <= 2.5 * len(ids) / 3
            assert all(after[stream_id] == "shard-2" for stream_id in moved)
            # The migrated streams still serve and alarm after the move.
            victim = moved[0] if moved else ids[0]
            service.submit(victim, drifted_values)
            report = service.report()
        by_id = {stream.stream_id: stream for stream in report.streams}
        assert by_id[victim].alarms_raised >= 1
        assert by_id[victim].explained == by_id[victim].alarms_raised

    def test_resize_under_concurrent_submission_loses_nothing(self, drifted_values):
        with ExplanationService(
            executor="process", shards=2, default_config=StreamConfig(window_size=150)
        ) as service:
            for stream_id in STREAM_IDS:
                service.register(stream_id)
            errors: list[Exception] = []

            def producer():
                try:
                    for start in range(0, drifted_values.size, 60):
                        for stream_id in STREAM_IDS:
                            service.submit(stream_id, drifted_values[start:start + 60])
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            thread = threading.Thread(target=producer, daemon=True)
            thread.start()
            service.resize(3)
            service.resize(2)
            thread.join(timeout=240)
            assert not thread.is_alive()
            report = service.report()
        assert errors == []
        assert report.batcher_stats["lost_chunks"] == 0
        for stream in report.streams:
            assert stream.observations == drifted_values.size

    def test_worker_failure_releases_the_migration_rendezvous(self):
        """A failed migration command must unblock resize(), not hang it.

        The worker survives command failures by replying WorkerFailure
        instead of MigrateOutDone/MigrateInDone; the parent must treat that
        as 'this shard's migration is over' (state lost, fresh fallback) or
        a deadline-less resize() would wait forever on a live worker.
        """
        executor = ProcessShardExecutor(shards=1)  # unbound: no processes
        executor._migrations[7] = {
            "out_pending": {"shard-0": object()},
            "in_pending": {"shard-0": object()},
            "states": {},
        }
        executor._stats_collections[8] = {"expected": {"shard-0": object()}, "replies": {}}
        executor._handle_reply(
            WorkerFailure("shard-0", "MigrateOut failed: boom", command="MigrateOut")
        )
        assert executor._migrations[7]["out_pending"] == {}
        assert executor._migrations[7]["in_pending"] == {}
        assert executor._stats_collections[8]["expected"] == {}
        with pytest.raises(ServiceBackendError):
            executor._raise_deferred()
        # An unrelated failure (say, RemoveStream) does not touch rendezvous.
        executor._migrations[7]["out_pending"]["shard-0"] = object()
        executor._handle_reply(
            WorkerFailure("shard-0", "RemoveStream failed", command="RemoveStream")
        )
        assert "shard-0" in executor._migrations[7]["out_pending"]

    def test_resize_validation(self):
        with ExplanationService(executor="process", shards=1) as service:
            with pytest.raises(ValidationError):
                service.resize(0)
            assert service.resize(1) == 1  # no-op
        with pytest.raises(ValidationError):
            service.executor.resize(2)  # closed

    def test_inline_and_thread_resize_are_parity_neutral(self, drifted_values):
        baseline = replay("inline", drifted_values)
        for executor in ("inline", "thread"):
            resized = replay(executor, drifted_values, resize_at={4: 3, 8: 2})
            assert json.dumps(resized.canonical_dict(), sort_keys=True) == json.dumps(
                baseline.canonical_dict(), sort_keys=True
            )

    def test_backlogged_resize_bounces_chunks_without_loss(self, drifted_values):
        """A resize posted behind queued ingest sweeps chunks back.

        The priority lane overtakes the source's backlog, so chunks already
        queued for migrating streams come back as bounces and replay on the
        new owner — counted, and never lost.
        """
        with ExplanationService(
            executor="process", shards=2, default_config=StreamConfig(window_size=150)
        ) as service:
            for stream_id in STREAM_IDS:
                service.register(stream_id)
            assert service.wait_ready(timeout=120)
            # A deep backlog on both shards, then an immediate grow: the
            # MigrateOut must overtake all of it.
            for start in range(0, 600, 60):
                for stream_id in STREAM_IDS:
                    service.submit(stream_id, drifted_values[start:start + 60])
            assert service.resize(3) == 3
            service.drain()
            stats = service.stats()
            report = service.report()
        assert stats["bounced_chunks"] >= 1
        assert stats["lost_chunks"] == 0
        assert report.state_lost == []
        for stream in report.streams:
            assert stream.observations == 600


# ----------------------------------------------------------------------
# Concurrent producers vs live migration (property-based)
# ----------------------------------------------------------------------
class TestConcurrentMigrationProperty:
    """Producers racing a resize must never perturb the canonical report."""

    @pytest.mark.parametrize("transport", ["framed", "legacy"])
    @settings(max_examples=2, deadline=None)
    @given(data=st.data())
    def test_concurrent_producers_mid_resize_parity(
        self, transport, drifted_values, data
    ):
        chunk = data.draw(st.integers(min_value=40, max_value=90))
        values = drifted_values[:480]
        rounds = list(range(0, values.size, chunk))
        resize_round = data.draw(
            st.integers(min_value=1, max_value=max(1, len(rounds) - 2))
        )

        baseline = replay("inline", values, chunk=chunk)

        with ExplanationService(
            executor="process",
            shards=2,
            transport=transport,
            default_config=StreamConfig(window_size=150),
        ) as service:
            for stream_id in STREAM_IDS:
                service.register(stream_id)
            assert service.wait_ready(timeout=120)
            # Two producers with disjoint stream sets (per-stream order is
            # each producer's own), plus this thread resizing: the barrier
            # lines everyone up so the grow overlaps live submission.
            barrier = threading.Barrier(3)
            errors: list[Exception] = []

            def producer(streams):
                try:
                    for index, start in enumerate(rounds):
                        if index == resize_round:
                            barrier.wait(timeout=120)
                        for stream_id in streams:
                            service.submit(stream_id, values[start:start + chunk])
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [
                threading.Thread(target=producer, args=(STREAM_IDS[:3],), daemon=True),
                threading.Thread(target=producer, args=(STREAM_IDS[3:],), daemon=True),
            ]
            for thread in threads:
                thread.start()
            barrier.wait(timeout=120)
            service.resize(3)
            for thread in threads:
                thread.join(timeout=240)
                assert not thread.is_alive()
            report = service.report()
        assert errors == []
        assert report.batcher_stats["lost_chunks"] == 0
        assert report.state_lost == []
        assert json.dumps(report.canonical_dict(), sort_keys=True) == json.dumps(
            baseline.canonical_dict(), sort_keys=True
        )


# ----------------------------------------------------------------------
# Fault visibility: respawn loss markers and retirement
# ----------------------------------------------------------------------
class TestFaultVisibility:
    def test_respawn_records_state_loss_in_report(self, drifted_values):
        with ExplanationService(
            executor="process", shards=2, default_config=StreamConfig(window_size=150)
        ) as service:
            service.register("a")
            service.register("b")
            executor = service.executor
            # Feed half a window so there is mid-window state to lose.
            service.submit("a", drifted_values[:80])
            service.drain()
            executor.crash_shard(executor.shard_of("a"))
            service.submit("a", drifted_values)
            report = service.report()
        assert report.restarts >= 1
        assert "a" in report.state_lost
        payload = report.to_dict()
        assert payload["faults"]["restarts"] >= 1
        assert "a" in payload["faults"]["state_lost"]
        assert "detector state lost" in report.render(alarms=False)

    def test_sigkill_of_source_mid_migration_loses_only_its_streams(
        self, drifted_values
    ):
        """SIGKILL a source while its extraction is in flight.

        Only the dead shard's unextracted streams may land in
        ``state_lost``; streams migrating off surviving sources keep their
        state, and the service keeps serving everything afterwards.
        """
        executor = ProcessShardExecutor(shards=2)
        with ExplanationService(
            executor=executor, default_config=StreamConfig(window_size=150)
        ) as service:
            ids = [f"m-{i:02d}" for i in range(12)]
            for stream_id in ids:
                service.register(stream_id)
            for stream_id in ids:
                service.submit(stream_id, drifted_values[:200])
            service.drain()
            assert executor.wait_ready(timeout=120)
            before = {stream_id: executor.shard_of(stream_id) for stream_id in ids}
            victim = "shard-0"

            original = executor._post_priority

            def kill_then_post(shard, command):
                # The parent has already built the migration epoch; the
                # source dies the instant its MigrateOut ships, i.e. with
                # every one of its streams still unextracted.
                if shard.shard_id == victim and isinstance(command, MigrateOut):
                    shard.process.kill()
                    shard.process.join(timeout=60)
                original(shard, command)

            executor._post_priority = kill_then_post
            try:
                assert executor.resize(3, timeout=120) == 3
            finally:
                executor._post_priority = original
            lost = set(service.report().state_lost)
            # The dead source could not hand anything over; everyone else did.
            assert lost
            assert all(before[stream_id] == victim for stream_id in lost)
            # The fleet keeps serving, dead shard's streams included.
            for stream_id in ids:
                service.submit(stream_id, drifted_values[:120])
            report = service.report()
        assert {stream.stream_id for stream in report.streams} == set(ids)
        assert report.batcher_stats["lost_chunks"] == 0

    def test_exhausted_shard_is_retired_and_streams_redistributed(self, drifted_values):
        executor = ProcessShardExecutor(shards=2, max_restarts=0)
        with ExplanationService(
            executor=executor, default_config=StreamConfig(window_size=150)
        ) as service:
            service.register("a")
            service.register("b")
            doomed = executor.shard_of("a")
            survivor = executor.shard_of("b")
            assert doomed != survivor
            executor.crash_shard(doomed)
            # Past its (zero) budget the shard is retired, not respawned:
            # "a" moves to the survivor and keeps serving.
            service.submit("a", drifted_values)
            report = service.report()
            assert executor.shard_of("a") == survivor
        stats = report.batcher_stats
        assert stats["retired_shards"] == 1
        assert stats["shards"] == 1
        assert "a" in report.state_lost
        by_id = {stream.stream_id: stream for stream in report.streams}
        assert by_id["a"].alarms_raised >= 1
        assert by_id["a"].explained == by_id["a"].alarms_raised


# ----------------------------------------------------------------------
# Worker-side cache statistics
# ----------------------------------------------------------------------
class TestWorkerCacheStats:
    def test_process_report_sees_worker_cache_hits(self, drifted_values):
        report = replay("process", drifted_values, shards=2)
        hits = sum(payload["hits"] for payload in report.cache_stats.values())
        assert hits > 0, "worker-side cache hits must reach the parent report"
        assert report.cache_hit_rate > 0.0
        # The stats survive serialisation with recomputed hit rates.
        payload = json.loads(json.dumps(report.to_dict()))
        assert sum(c["hits"] for c in payload["caches"].values()) == hits


# ----------------------------------------------------------------------
# Autoscaling policy
# ----------------------------------------------------------------------
class _FakeShardedExecutor:
    """Executor stand-in exposing the queue-depth gauge without processes."""

    def __init__(self, shards: int = 2, capacity: int = 100):
        self.shards = shards
        self.capacity = capacity
        self.outstanding = 0
        self.resized_to: list[int] = []

    def stats(self) -> dict:
        return {
            "shards": self.shards,
            "capacity": self.capacity,
            "outstanding": self.outstanding,
        }

    def resize(self, shards: int) -> int:
        self.resized_to.append(shards)
        self.shards = shards
        return shards


class TestAutoscaler:
    def test_policy_validation(self):
        with pytest.raises(ValidationError):
            QueueDepthPolicy(min_shards=0)
        with pytest.raises(ValidationError):
            QueueDepthPolicy(min_shards=3, max_shards=2)
        with pytest.raises(ValidationError):
            QueueDepthPolicy(scale_up_at=0.2, scale_down_at=0.5)
        with pytest.raises(ValidationError):
            QueueDepthPolicy(cooldown_ticks=-1)

    def test_scales_up_down_with_hysteresis_and_cooldown(self):
        executor = _FakeShardedExecutor(shards=2)
        scaler = Autoscaler(
            executor,
            QueueDepthPolicy(
                min_shards=1, max_shards=4, scale_up_at=0.8, scale_down_at=0.1,
                cooldown_ticks=1,
            ),
        )
        executor.outstanding = 90  # depth 0.9: scale up
        decision = scaler.tick()
        assert decision is not None and decision.target == 3
        assert executor.shards == 3
        assert scaler.tick() is None  # cooldown holds even under pressure
        decision = scaler.tick()
        assert decision is not None and decision.target == 4
        assert scaler.tick() is None  # cooldown
        assert scaler.tick() is None  # at max_shards: hold
        executor.outstanding = 50  # mid-band: hold
        assert scaler.tick() is None
        executor.outstanding = 5  # depth 0.05: scale down
        decision = scaler.tick()
        assert decision is not None and decision.target == 3
        assert decision.direction == "down"
        assert "3" in decision.render()
        assert [d.target for d in scaler.decisions] == [3, 4, 3]

    def test_never_leaves_the_bounds(self):
        executor = _FakeShardedExecutor(shards=2)
        policy = QueueDepthPolicy(
            min_shards=2, max_shards=3, scale_up_at=0.8, scale_down_at=0.1,
            cooldown_ticks=0,
        )
        scaler = Autoscaler(executor, policy)
        executor.outstanding = 100
        for _ in range(5):
            scaler.tick()
        assert executor.shards == 3
        executor.outstanding = 0
        for _ in range(5):
            scaler.tick()
        assert executor.shards == 2
        assert all(2 <= target <= 3 for target in executor.resized_to)

    def test_non_sharded_executors_are_ignored(self, drifted_values):
        with ExplanationService(executor="inline") as service:
            scaler = Autoscaler(service.executor, QueueDepthPolicy())
            assert scaler.tick() is None
            assert scaler.decisions == []

    def test_background_tick_thread_drives_the_pool(self):
        executor = _FakeShardedExecutor(shards=1)
        executor.outstanding = 100  # saturated: scale up every tick
        scaler = Autoscaler(
            executor,
            QueueDepthPolicy(
                min_shards=1, max_shards=3, scale_up_at=0.8, scale_down_at=0.1,
                cooldown_ticks=0,
            ),
        )
        scaler.start(interval=0.005)
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline and executor.shards < 3:
            time.sleep(0.005)
        scaler.stop()
        assert executor.shards == 3
        assert scaler.error is None
        assert [d.target for d in scaler.decisions][:2] == [2, 3]
        # Idempotent stop; restartable afterwards.
        scaler.stop()
        scaler.start(interval=0.005)
        scaler.stop()

    def test_background_thread_rejects_double_start_and_bad_interval(self):
        scaler = Autoscaler(_FakeShardedExecutor(), QueueDepthPolicy())
        with pytest.raises(ValidationError):
            scaler.start(interval=0.0)
        scaler.start(interval=60.0)
        try:
            with pytest.raises(ValidationError):
                scaler.start(interval=60.0)
        finally:
            scaler.stop()

    def test_background_thread_records_tick_errors_and_exits(self):
        class ExplodingExecutor(_FakeShardedExecutor):
            def resize(self, shards: int) -> int:
                raise ValidationError("closed underneath the autoscaler")

        executor = ExplodingExecutor(shards=1)
        executor.outstanding = 100
        scaler = Autoscaler(
            executor,
            QueueDepthPolicy(min_shards=1, max_shards=3, cooldown_ticks=0),
        )
        scaler.start(interval=0.005)
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline and scaler.error is None:
            time.sleep(0.005)
        scaler.stop()
        assert isinstance(scaler.error, ValidationError)
