"""End-to-end tests for the MOCHE explainer (repro.core.moche)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.brute_force import BruteForceExplainer
from repro.core.moche import MOCHE, explain_ks_failure
from repro.core.preference import PreferenceList
from repro.exceptions import KSTestPassedError
from tests.conftest import make_failed_pair


class TestPaperExample:
    def test_example6_most_comprehensible_explanation(self, paper_example):
        reference, test, alpha = paper_example
        preference = PreferenceList.from_order([3, 2, 1, 0])
        explanation = explain_ks_failure(reference, test, alpha, preference)
        assert explanation.size == 2
        assert sorted(explanation.indices.tolist()) == [1, 2]
        assert sorted(explanation.values.tolist()) == [12.0, 13.0]

    def test_example_reverses_failed_test(self, paper_example):
        reference, test, alpha = paper_example
        explanation = explain_ks_failure(reference, test, alpha)
        assert explanation.ks_before.rejected
        assert explanation.reverses_test


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_brute_force_exactly(self, seed):
        """MOCHE returns exactly the brute-force most comprehensible explanation."""
        rng = np.random.default_rng(seed + 100)
        reference = rng.normal(size=40)
        test = np.concatenate([rng.normal(size=4), rng.uniform(3.0, 5.0, size=5)])
        preference = PreferenceList.random(test.size, seed=seed)
        brute = BruteForceExplainer(alpha=0.05)
        try:
            expected = brute.explain(reference, test, preference)
        except KSTestPassedError:
            pytest.skip("pair does not fail the KS test")
        actual = explain_ks_failure(reference, test, 0.05, preference)
        assert actual.size == expected.size
        assert set(actual.indices.tolist()) == set(expected.indices.tolist())

    def test_explanation_is_minimal(self, shifted_pair):
        """Removing any strictly smaller prefix-of-preference subset cannot work."""
        reference, test = shifted_pair
        explanation = explain_ks_failure(reference, test)
        # By Definition 1 all explanations share the minimum size; check that
        # the reported lower bound and size are consistent and that removing
        # size-1 arbitrary points from the explanation no longer reverses.
        assert explanation.size >= 1
        if explanation.size > 1:
            from repro.core.cumulative import ExplanationProblem

            problem = ExplanationProblem(reference, test, 0.05)
            assert not problem.is_reversing_subset(explanation.indices[:-1])

    def test_explanation_reverses_for_larger_instances(self, rng):
        reference, test = make_failed_pair(rng, 2000, 1500)
        explanation = explain_ks_failure(reference, test)
        assert explanation.reverses_test
        assert explanation.size < test.size

    def test_lower_bound_le_size(self, shifted_pair):
        reference, test = shifted_pair
        explanation = explain_ks_failure(reference, test)
        assert explanation.size_lower_bound <= explanation.size
        assert explanation.estimation_error >= 0

    def test_identity_preference_default(self, shifted_pair):
        reference, test = shifted_pair
        default = explain_ks_failure(reference, test)
        explicit = explain_ks_failure(
            reference, test, preference=PreferenceList.identity(test.size)
        )
        assert np.array_equal(default.indices, explicit.indices)

    def test_preference_as_plain_list(self, paper_example):
        reference, test, alpha = paper_example
        explanation = explain_ks_failure(reference, test, alpha, preference=[3, 2, 1, 0])
        assert sorted(explanation.indices.tolist()) == [1, 2]


class TestComprehensibility:
    def test_result_is_lexicographically_minimal_among_sampled_alternatives(self, rng):
        """No same-size reversing subset is more preferred than MOCHE's."""
        reference, test = make_failed_pair(rng, 300, 200, shift_fraction=0.15)
        preference = PreferenceList.random(test.size, seed=0)
        explanation = explain_ks_failure(reference, test, 0.05, preference)
        from repro.core.cumulative import ExplanationProblem

        problem = ExplanationProblem(reference, test, 0.05)
        moche_key = preference.lexicographic_key(explanation.indices)
        # Randomly sample same-size subsets; none may both reverse the test
        # and precede MOCHE's explanation lexicographically.
        for _ in range(50):
            candidate = rng.choice(test.size, size=explanation.size, replace=False)
            if not problem.is_reversing_subset(candidate):
                continue
            assert moche_key <= preference.lexicographic_key(candidate)

    def test_explanation_respects_preference_prefix(self, rng):
        """Points strictly preferred to the first selected point are in no explanation."""
        reference, test = make_failed_pair(rng, 200, 150, shift_fraction=0.2)
        preference = PreferenceList.random(test.size, seed=1)
        explanation = explain_ks_failure(reference, test, 0.05, preference)
        first_rank = preference.ranks[explanation.indices].min()
        from repro.core.construction import PartialExplanationChecker
        from repro.core.cumulative import ExplanationProblem

        problem = ExplanationProblem(reference, test, 0.05)
        checker = PartialExplanationChecker(problem, explanation.size)
        for rank in range(int(first_rank)):
            index = preference[rank]
            assert not checker.would_extend(index)

    def test_different_preferences_may_select_different_points(self, rng):
        reference, test = make_failed_pair(rng, 400, 300)
        ascending = PreferenceList.from_scores(test, descending=False, seed=0)
        descending = PreferenceList.from_scores(test, descending=True, seed=0)
        low = explain_ks_failure(reference, test, 0.05, ascending)
        high = explain_ks_failure(reference, test, 0.05, descending)
        assert low.size == high.size
        assert set(low.indices.tolist()) != set(high.indices.tolist())


class TestInterface:
    def test_passed_test_raises(self, rng):
        sample = rng.normal(size=200)
        with pytest.raises(KSTestPassedError):
            explain_ks_failure(sample, sample)

    def test_ablation_mode_matches_full_moche(self, shifted_pair):
        reference, test = shifted_pair
        full = MOCHE(alpha=0.05, use_lower_bound=True).explain(reference, test)
        ablation = MOCHE(alpha=0.05, use_lower_bound=False).explain(reference, test)
        assert full.size == ablation.size
        assert np.array_equal(full.indices, ablation.indices)
        assert ablation.method == "moche_ns"
        assert ablation.size_lower_bound is None

    def test_find_size_matches_explain(self, shifted_pair):
        reference, test = shifted_pair
        explainer = MOCHE(alpha=0.05)
        assert explainer.find_size(reference, test).size == explainer.explain(
            reference, test
        ).size

    def test_explanation_metadata(self, shifted_pair):
        reference, test = shifted_pair
        explanation = explain_ks_failure(reference, test)
        assert explanation.method == "moche"
        assert explanation.alpha == 0.05
        assert explanation.runtime_seconds >= 0
        assert 0 < explanation.fraction_of_test_set < 1
        assert "reverses" in explanation.summary()

    def test_values_match_indices(self, shifted_pair):
        reference, test = shifted_pair
        explanation = explain_ks_failure(reference, test)
        assert np.array_equal(explanation.values, np.asarray(test)[explanation.indices])

    def test_repeated_runs_are_deterministic(self, shifted_pair):
        reference, test = shifted_pair
        first = explain_ks_failure(reference, test)
        second = explain_ks_failure(reference, test)
        assert np.array_equal(first.indices, second.indices)
