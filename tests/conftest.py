"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cumulative import ExplanationProblem
from repro.core.preference import PreferenceList


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def paper_example() -> tuple[np.ndarray, np.ndarray, float]:
    """The running example of the paper (Examples 3-6).

    ``T = {13, 13, 12, 20}``, ``R = {14, 14, 14, 14, 20, 20, 20, 20}``,
    alpha = 0.3.  The sets fail the KS test, the explanation size is 2 and
    under the preference ``[t4, t3, t2, t1]`` the most comprehensible
    explanation is ``{t3, t2} = {12, 13}``.
    """
    test = np.array([13.0, 13.0, 12.0, 20.0])
    reference = np.array([14.0, 14.0, 14.0, 14.0, 20.0, 20.0, 20.0, 20.0])
    return reference, test, 0.3


@pytest.fixture
def shifted_pair(rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """A moderately sized failed KS test: normal reference, shifted tail."""
    reference = rng.normal(size=500)
    test = np.concatenate([rng.normal(size=440), rng.normal(3.0, 0.5, size=60)])
    return reference, test


@pytest.fixture
def small_failed_problem(rng: np.random.Generator) -> ExplanationProblem:
    """A small failed problem suitable for brute-force cross-checks."""
    reference = rng.normal(size=40)
    test = np.concatenate([rng.normal(size=4), rng.uniform(4.0, 5.0, size=6)])
    problem = ExplanationProblem(reference, test, alpha=0.05)
    assert problem.initial_result.rejected
    return problem


@pytest.fixture
def identity_preference() -> PreferenceList:
    """Identity preference over ten points."""
    return PreferenceList.identity(10)


def make_failed_pair(
    rng: np.random.Generator,
    reference_size: int = 400,
    test_size: int = 400,
    shift_fraction: float = 0.12,
    shift: float = 3.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Helper to build failed KS test pairs of configurable size."""
    shifted = int(round(shift_fraction * test_size))
    reference = rng.normal(size=reference_size)
    test = np.concatenate(
        [rng.normal(size=test_size - shifted), rng.normal(shift, 0.5, size=shifted)]
    )
    return reference, test
