"""Tests for the Equation 4/5 bound machinery (repro.core.bounds)."""

from __future__ import annotations

from itertools import combinations

import numpy as np
import pytest

from repro.core.bounds import BoundsCalculator, tolerant_ceil, tolerant_floor
from repro.core.cumulative import ExplanationProblem, subset_from_cumulative
from repro.core.ks import ks_test
from repro.exceptions import ValidationError


def brute_force_qualified_exists(problem: ExplanationProblem, size: int) -> bool:
    """Ground truth for Theorem 1: enumerate all size-``size`` subsets."""
    indices = range(problem.m)
    return any(
        problem.is_reversing_subset(np.array(subset))
        for subset in combinations(indices, size)
    )


class TestTolerantRounding:
    def test_exact_integers_survive_ceil(self):
        values = np.array([1.0, 2.0, -3.0, 0.0])
        assert np.array_equal(tolerant_ceil(values), values)

    def test_exact_integers_survive_floor(self):
        values = np.array([1.0, 2.0, -3.0, 0.0])
        assert np.array_equal(tolerant_floor(values), values)

    def test_near_integer_noise_is_absorbed(self):
        assert tolerant_ceil(np.array([2.0 + 1e-12]))[0] == 2.0
        assert tolerant_floor(np.array([2.0 - 1e-12]))[0] == 2.0

    def test_genuine_fractions_round_normally(self):
        assert tolerant_ceil(np.array([1.5]))[0] == 2.0
        assert tolerant_floor(np.array([1.5]))[0] == 1.0


class TestOmegaGamma:
    def test_omega_positive_and_decreasing_in_h(self, small_failed_problem):
        calculator = BoundsCalculator(small_failed_problem)
        omegas = [calculator.omega(h) for h in range(1, small_failed_problem.m)]
        assert all(o > 0 for o in omegas)
        assert all(a >= b for a, b in zip(omegas, omegas[1:]))

    def test_omega_formula(self, paper_example):
        reference, test, alpha = paper_example
        problem = ExplanationProblem(reference, test, alpha)
        calculator = BoundsCalculator(problem)
        h = 2
        remaining = problem.m - h
        expected = problem.c_alpha * np.sqrt(remaining + remaining**2 / problem.n)
        assert calculator.omega(h) == pytest.approx(expected)

    def test_gamma_formula(self, paper_example):
        reference, test, alpha = paper_example
        problem = ExplanationProblem(reference, test, alpha)
        calculator = BoundsCalculator(problem)
        h = 1
        expected = problem.cum_test - (problem.m - h) / problem.n * problem.cum_reference
        assert np.allclose(calculator.gamma(h), expected)

    def test_running_max_is_monotone(self, small_failed_problem):
        calculator = BoundsCalculator(small_failed_problem)
        running = calculator.running_max_gamma(2)
        assert np.all(np.diff(running) >= 0)

    @pytest.mark.parametrize("h", [0, -1, 1000])
    def test_invalid_h_rejected(self, small_failed_problem, h):
        calculator = BoundsCalculator(small_failed_problem)
        with pytest.raises(ValidationError):
            calculator.omega(h)


class TestSizeBounds:
    def test_bounds_bracket_every_reversing_subset(self, small_failed_problem):
        """Lemma 1: the cumulative vector of any qualified subset obeys the bounds."""
        problem = small_failed_problem
        calculator = BoundsCalculator(problem)
        for size in range(1, problem.m):
            bounds = calculator.size_bounds(size)
            for subset in combinations(range(problem.m), size):
                if not problem.is_reversing_subset(np.array(subset)):
                    continue
                vector = problem.cumulative_of_indices(np.array(subset))
                assert np.all(bounds.lower <= vector), (size, subset)
                assert np.all(vector <= bounds.upper), (size, subset)

    def test_upper_bounds_capped_by_test_counts_and_h(self, small_failed_problem):
        calculator = BoundsCalculator(small_failed_problem)
        for size in range(1, small_failed_problem.m):
            bounds = calculator.size_bounds(size)
            assert np.all(bounds.upper <= small_failed_problem.cum_test)
            assert np.all(bounds.upper <= size)
            assert np.all(bounds.lower >= 0)

    def test_paper_example_h1_infeasible_h2_feasible(self, paper_example):
        """Example 4: no qualified 1-subset, a qualified 2-subset exists."""
        reference, test, alpha = paper_example
        problem = ExplanationProblem(reference, test, alpha)
        calculator = BoundsCalculator(problem)
        assert not calculator.qualified_vector_exists(1)
        assert calculator.qualified_vector_exists(2)

    def test_paper_example_h2_bounds(self, paper_example):
        """The h=2 bounds of Example 4 are feasible at every position.

        The paper's Example 4 lists the pairs as (0,1), (1,2), (1,2), (1,2);
        evaluating Equations 4a/4b exactly gives lower bounds [0, 2, 2, 2]
        (both qualified 2-subsets, {12, 13} and {13, 13}, indeed have
        C_S[2] = 2), so the example's "1" entries are a slight slack.  What
        matters — and what this test pins down — is the upper bounds and the
        feasibility l_i <= u_i at every i.
        """
        reference, test, alpha = paper_example
        problem = ExplanationProblem(reference, test, alpha)
        bounds = BoundsCalculator(problem).size_bounds(2)
        assert np.array_equal(bounds.lower, [0, 2, 2, 2])
        assert np.array_equal(bounds.upper, [1, 2, 2, 2])
        assert bounds.feasible

    @pytest.mark.parametrize("seed", range(5))
    def test_theorem1_matches_brute_force(self, seed):
        """Theorem 1's feasibility check agrees with exhaustive search."""
        rng = np.random.default_rng(seed)
        reference = rng.normal(size=25)
        test = np.concatenate([rng.normal(size=5), rng.uniform(3, 4, size=3)])
        problem = ExplanationProblem(reference, test, 0.05, require_failed=False)
        if problem.initial_result.passed:
            pytest.skip("pair does not fail the KS test")
        calculator = BoundsCalculator(problem)
        for size in range(1, problem.m):
            assert calculator.qualified_vector_exists(size) == brute_force_qualified_exists(
                problem, size
            ), size


class TestNecessaryCondition:
    def test_monotone_in_h(self, small_failed_problem):
        """Theorem 2: once the condition holds it keeps holding for larger h."""
        calculator = BoundsCalculator(small_failed_problem)
        flags = [
            calculator.necessary_condition_holds(h)
            for h in range(1, small_failed_problem.m)
        ]
        # No True followed by False.
        assert all(not (a and not b) for a, b in zip(flags, flags[1:]))

    def test_implied_by_feasibility(self, small_failed_problem):
        """Theorem 1 feasibility implies the Theorem 2 necessary condition."""
        calculator = BoundsCalculator(small_failed_problem)
        for size in range(1, small_failed_problem.m):
            if calculator.qualified_vector_exists(size):
                assert calculator.necessary_condition_holds(size)

    def test_paper_example_lower_bound(self, paper_example):
        """Example 5: h=1 violates the necessary condition, h=2 satisfies it."""
        reference, test, alpha = paper_example
        problem = ExplanationProblem(reference, test, alpha)
        calculator = BoundsCalculator(problem)
        assert not calculator.necessary_condition_holds(1)
        assert calculator.necessary_condition_holds(2)


class TestConstructQualifiedVector:
    def test_constructed_vector_is_a_real_reversing_subset(self, small_failed_problem):
        problem = small_failed_problem
        calculator = BoundsCalculator(problem)
        for size in range(1, problem.m):
            if not calculator.qualified_vector_exists(size):
                continue
            vector = calculator.construct_qualified_vector(size)
            subset = subset_from_cumulative(problem.base, vector)
            assert subset.size == size
            remaining = _remove_multiset(problem.test, subset)
            assert ks_test(problem.reference, remaining, problem.alpha).passed

    def test_infeasible_size_raises(self, paper_example):
        reference, test, alpha = paper_example
        problem = ExplanationProblem(reference, test, alpha)
        with pytest.raises(ValidationError):
            BoundsCalculator(problem).construct_qualified_vector(1)


def _remove_multiset(test: np.ndarray, subset: np.ndarray) -> np.ndarray:
    """Remove the multiset ``subset`` from ``test`` (both treated as multisets)."""
    remaining = list(np.sort(test))
    for value in np.sort(subset):
        remaining.remove(value)
    return np.array(remaining)
