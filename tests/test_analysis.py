"""Tests for the explanation-space analysis tools (repro.core.analysis)."""

from __future__ import annotations

from itertools import combinations

import numpy as np
import pytest

from repro.core.analysis import alpha_sensitivity, enumerate_explanations, relevant_points
from repro.core.cumulative import ExplanationProblem
from repro.core.moche import explain_ks_failure
from repro.core.preference import PreferenceList
from repro.core.size_search import explanation_size
from repro.exceptions import ValidationError
from tests.conftest import make_failed_pair


def brute_force_explanations(problem: ExplanationProblem, size: int) -> list[tuple[int, ...]]:
    """All reversing subsets of the given size, as sorted index tuples."""
    return [
        subset
        for subset in combinations(range(problem.m), size)
        if problem.is_reversing_subset(np.array(subset))
    ]


class TestRelevantPoints:
    def test_matches_brute_force_membership(self, small_failed_problem):
        problem = small_failed_problem
        size = explanation_size(problem).size
        expected = np.zeros(problem.m, dtype=bool)
        for subset in brute_force_explanations(problem, size):
            expected[list(subset)] = True
        assert np.array_equal(relevant_points(problem), expected)

    def test_moche_only_selects_relevant_points(self, small_failed_problem):
        problem = small_failed_problem
        mask = relevant_points(problem)
        for seed in range(3):
            preference = PreferenceList.random(problem.m, seed=seed)
            explanation = explain_ks_failure(
                problem.reference, problem.test, problem.alpha, preference
            )
            assert mask[explanation.indices].all()

    def test_relevant_points_exist_for_every_failed_test(self, shifted_pair):
        reference, test = shifted_pair
        problem = ExplanationProblem(reference, test, 0.05)
        mask = relevant_points(problem)
        assert mask.any()
        assert not mask.all()

    def test_paper_example_relevance(self, paper_example):
        reference, test, alpha = paper_example
        problem = ExplanationProblem(reference, test, alpha)
        mask = relevant_points(problem)
        # Example 6: t4 = 20 is in no explanation; 12 and 13 are.
        assert not mask[3]
        assert mask[0] and mask[1] and mask[2]


class TestEnumerateExplanations:
    def test_enumerates_exactly_the_brute_force_set(self, small_failed_problem):
        problem = small_failed_problem
        size = explanation_size(problem).size
        expected = {tuple(sorted(s)) for s in brute_force_explanations(problem, size)}
        enumerated = {
            tuple(sorted(e.tolist())) for e in enumerate_explanations(problem)
        }
        assert enumerated == expected

    def test_first_explanation_is_the_most_comprehensible(self, small_failed_problem):
        problem = small_failed_problem
        preference = PreferenceList.random(problem.m, seed=5)
        first = next(iter(enumerate_explanations(problem, preference)))
        moche = explain_ks_failure(
            problem.reference, problem.test, problem.alpha, preference
        )
        assert set(first.tolist()) == set(moche.indices.tolist())

    def test_order_is_lexicographic(self, small_failed_problem):
        problem = small_failed_problem
        preference = PreferenceList.identity(problem.m)
        keys = [
            preference.lexicographic_key(explanation)
            for explanation in enumerate_explanations(problem, preference)
        ]
        assert keys == sorted(keys)

    def test_limit_truncates(self, small_failed_problem):
        problem = small_failed_problem
        limited = list(enumerate_explanations(problem, limit=2))
        assert len(limited) <= 2

    def test_all_enumerated_explanations_reverse(self, small_failed_problem):
        problem = small_failed_problem
        for explanation in enumerate_explanations(problem, limit=10):
            assert problem.is_reversing_subset(explanation)

    def test_enumeration_on_larger_instance_is_lazy(self, rng):
        reference, test = make_failed_pair(rng, 300, 200, shift_fraction=0.2)
        problem = ExplanationProblem(reference, test, 0.05)
        top_three = list(enumerate_explanations(problem, limit=3))
        assert len(top_three) == 3
        sizes = {e.size for e in top_three}
        assert len(sizes) == 1
        # Explanations are distinct.
        assert len({tuple(sorted(e.tolist())) for e in top_three}) == 3


class TestAlphaSensitivity:
    def test_size_decreases_with_smaller_alpha(self, shifted_pair):
        reference, test = shifted_pair
        points = alpha_sensitivity(reference, test, [0.10, 0.05, 0.01])
        sizes = [p.size for p in points if p.failed]
        assert sizes == sorted(sizes, reverse=True)

    def test_passed_levels_reported_without_size(self, rng):
        reference = rng.normal(size=300)
        test = np.concatenate([rng.normal(size=285), rng.normal(2.5, 0.3, size=15)])
        points = alpha_sensitivity(reference, test, [0.2, 1e-6])
        by_alpha = {p.alpha: p for p in points}
        assert not by_alpha[1e-6].failed
        assert by_alpha[1e-6].size is None

    def test_lower_bound_accompanies_size(self, shifted_pair):
        reference, test = shifted_pair
        for point in alpha_sensitivity(reference, test, [0.05]):
            if point.failed:
                assert point.lower_bound is not None
                assert point.lower_bound <= point.size

    def test_empty_alphas_rejected(self, shifted_pair):
        reference, test = shifted_pair
        with pytest.raises(ValidationError):
            alpha_sensitivity(reference, test, [])
