"""Property-based tests (hypothesis) for the core MOCHE invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core.brute_force import BruteForceExplainer
from repro.core.bounds import BoundsCalculator
from repro.core.cumulative import ExplanationProblem, cumulative_vector
from repro.core.ks import critical_value, ks_statistic, ks_test
from repro.core.moche import explain_ks_failure
from repro.core.preference import PreferenceList
from repro.core.size_search import explanation_size, lower_bound_size
from repro.utils.ecdf import evaluate_ecdf

# Strategies ------------------------------------------------------------
values = st.integers(min_value=0, max_value=12).map(float)
reference_sets = st.lists(values, min_size=4, max_size=30)
test_sets = st.lists(values, min_size=3, max_size=9)
samples = st.lists(
    st.floats(min_value=-50, max_value=50, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=60,
)

COMMON_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


def failed_problem_or_none(reference, test, alpha=0.2):
    reference = np.asarray(reference, dtype=float)
    test = np.asarray(test, dtype=float)
    result = ks_test(reference, test, alpha)
    if result.passed:
        return None
    return ExplanationProblem(reference, test, alpha)


# KS test properties ----------------------------------------------------
class TestKSProperties:
    @COMMON_SETTINGS
    @given(samples, samples)
    def test_statistic_bounds_and_symmetry(self, a, b):
        statistic = ks_statistic(a, b)
        assert 0.0 <= statistic <= 1.0
        assert statistic == pytest.approx(ks_statistic(b, a))

    @COMMON_SETTINGS
    @given(samples)
    def test_identical_samples_never_fail(self, a):
        result = ks_test(a, a, alpha=0.05)
        assert result.statistic == pytest.approx(0.0)
        assert result.passed

    @COMMON_SETTINGS
    @given(samples, samples)
    def test_ecdf_is_monotone_and_normalised(self, a, b):
        grid = np.union1d(np.asarray(a, float), np.asarray(b, float))
        ecdf = evaluate_ecdf(np.asarray(a, float), grid)
        assert np.all(np.diff(ecdf) >= -1e-12)
        assert ecdf[-1] == pytest.approx(1.0)

    @COMMON_SETTINGS
    @given(
        st.floats(min_value=0.001, max_value=0.26),
        st.integers(min_value=2, max_value=500),
        st.integers(min_value=2, max_value=500),
    )
    def test_critical_value_positive_and_monotone_in_alpha(self, alpha, n, m):
        value = critical_value(alpha, n, m)
        assert value > 0
        assert value >= critical_value(min(alpha * 2, 0.9), n, m)


# Cumulative-vector properties ------------------------------------------
class TestCumulativeProperties:
    @COMMON_SETTINGS
    @given(reference_sets, test_sets, st.data())
    def test_cumulative_vector_of_subset_dominated_by_test(self, reference, test, data):
        problem = failed_problem_or_none(reference, test)
        assume(problem is not None)
        size = data.draw(st.integers(min_value=0, max_value=problem.m))
        indices = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=problem.m - 1),
                min_size=size,
                max_size=size,
                unique=True,
            )
        )
        vector = problem.cumulative_of_indices(np.array(indices, dtype=int))
        assert np.all(vector <= problem.cum_test)
        assert np.all(np.diff(vector) >= 0)
        assert vector[-1] == len(indices)

    @COMMON_SETTINGS
    @given(reference_sets, test_sets)
    def test_cumulative_vector_matches_definition(self, reference, test):
        reference = np.asarray(reference, float)
        test = np.asarray(test, float)
        base = np.union1d(reference, test)
        vector = cumulative_vector(base, test)
        for i, x in enumerate(base):
            assert vector[i] == np.sum(test <= x)


# MOCHE properties -------------------------------------------------------
class TestMocheProperties:
    @COMMON_SETTINGS
    @given(reference_sets, test_sets, st.integers(min_value=0, max_value=10_000))
    def test_moche_matches_brute_force(self, reference, test, seed):
        """On every failing small instance MOCHE equals the brute-force oracle."""
        problem = failed_problem_or_none(reference, test)
        assume(problem is not None)
        preference = PreferenceList.random(problem.m, seed=seed)
        expected = BruteForceExplainer(alpha=problem.alpha).explain(
            problem.reference, problem.test, preference
        )
        actual = explain_ks_failure(
            problem.reference, problem.test, problem.alpha, preference
        )
        assert actual.size == expected.size
        assert set(actual.indices.tolist()) == set(expected.indices.tolist())

    @COMMON_SETTINGS
    @given(reference_sets, test_sets)
    def test_explanation_reverses_and_lower_bound_holds(self, reference, test):
        problem = failed_problem_or_none(reference, test)
        assume(problem is not None)
        explanation = explain_ks_failure(problem.reference, problem.test, problem.alpha)
        assert explanation.reverses_test
        assert 1 <= explanation.size <= problem.m - 1
        assert explanation.size_lower_bound <= explanation.size
        assert lower_bound_size(problem) == explanation.size_lower_bound

    @COMMON_SETTINGS
    @given(reference_sets, test_sets)
    def test_no_smaller_subset_reverses(self, reference, test):
        """Theorem 1 feasibility is exact: size-1 below k is never feasible."""
        problem = failed_problem_or_none(reference, test)
        assume(problem is not None)
        size = explanation_size(problem).size
        calculator = BoundsCalculator(problem)
        for smaller in range(1, size):
            assert not calculator.qualified_vector_exists(smaller)

    @COMMON_SETTINGS
    @given(reference_sets, test_sets, st.integers(min_value=0, max_value=100))
    def test_size_is_preference_invariant(self, reference, test, seed):
        """The explanation size never depends on the preference list."""
        problem = failed_problem_or_none(reference, test)
        assume(problem is not None)
        base = explain_ks_failure(problem.reference, problem.test, problem.alpha)
        other = explain_ks_failure(
            problem.reference,
            problem.test,
            problem.alpha,
            PreferenceList.random(problem.m, seed=seed),
        )
        assert base.size == other.size
