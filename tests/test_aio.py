"""Tests for the asyncio ingestion front-end (``repro.aio``).

Covers the chunk-completion hook the async layer is bridged from, the
awaitable service wrapper itself (futures, alarm streams, backpressure
awaiting, the periodic snapshot task), the ingest sources and server, and
the headline property: interleaved async submitters across many streams
produce byte-identical canonical reports to a sequential replay, under
both in-process and process-sharded executors.
"""

from __future__ import annotations

import asyncio
import contextlib
import io
import json
import re
import threading
import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.aio import (
    AsyncExplanationService,
    AsyncIngestServer,
    FileTailSource,
    decode_event,
    encode_event,
    make_source,
    register_source,
    serve_listen,
    source_names,
)
from repro.exceptions import ValidationError
from repro.service import ChunkResult, ExplanationService, StreamConfig
from repro.service.results import canonical_report_dict
from repro.service.snapshot import ServiceSnapshot

WINDOW = 100


def fleet(streams: int = 2, size: int = 500) -> dict[str, np.ndarray]:
    """Deterministic drifting feeds: one mean shift halfway through."""
    series: dict[str, np.ndarray] = {}
    for index in range(streams):
        first = np.random.default_rng(index).normal(0.0, 1.0, size=size // 2)
        second = np.random.default_rng(1000 + index).normal(4.0, 1.0, size=size - size // 2)
        series[f"s{index}"] = np.concatenate([first, second])
    return series


def sequential_canonical(
    series: dict[str, np.ndarray], executor: str = "inline", chunk: int = 125, **kwargs
) -> dict:
    """Reference replay: stream after stream, chunk after chunk."""
    with ExplanationService(
        executor=executor, default_config=StreamConfig(window_size=WINDOW), **kwargs
    ) as service:
        for stream_id in sorted(series):
            service.register(stream_id)
        for stream_id in sorted(series):
            values = series[stream_id]
            for start in range(0, values.size, chunk):
                piece = values[start:start + chunk]
                if piece.size:
                    service.submit(stream_id, piece)
        return canonical_report_dict(service.report().to_dict())


def canonical_json(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True)


# ----------------------------------------------------------------------
# The engine-level completion hook the async layer is built on
# ----------------------------------------------------------------------
class TestChunkCompletion:
    @pytest.mark.parametrize("executor,kwargs", [("inline", {}), ("thread", {"workers": 2})])
    def test_on_complete_fires_once_per_chunk_with_its_alarms(self, executor, kwargs):
        series = fleet(streams=1)["s0"]
        results: list[ChunkResult] = []
        with ExplanationService(
            executor=executor, default_config=StreamConfig(window_size=WINDOW), **kwargs
        ) as service:
            service.register("s0")
            chunks = 0
            for start in range(0, series.size, 125):
                service.submit("s0", series[start:start + 125], on_complete=results.append)
                chunks += 1
            service.drain()
            report = service.report()
        assert len(results) == chunks
        assert sum(result.observations for result in results) == series.size
        assert sum(len(result.alarms) for result in results) == report.alarms_raised
        assert not any(result.lost for result in results)
        # A chunk that raised no alarms still resolves (with none).
        assert any(not result.alarms for result in results)

    def test_process_executor_resolves_after_shard_acknowledgement(self):
        series = fleet(streams=1)["s0"]
        results: list[ChunkResult] = []
        with ExplanationService(
            executor="process", shards=2, default_config=StreamConfig(window_size=WINDOW)
        ) as service:
            service.register("s0")
            for start in range(0, series.size, 125):
                service.submit("s0", series[start:start + 125], on_complete=results.append)
            service.drain()
            report = service.report()
        assert len(results) == 4
        assert sum(result.observations for result in results) == series.size
        assert sum(len(result.alarms) for result in results) == report.alarms_raised
        assert not any(result.lost for result in results)

    def test_dropped_alarms_still_resolve_their_chunk(self):
        """Exactly-once completion even when backpressure drops jobs."""
        series = fleet(streams=1, size=1200)["s0"]
        results: list[ChunkResult] = []
        with ExplanationService(
            executor="thread",
            workers=1,
            queue_capacity=1,
            policy="drop-oldest",
            default_config=StreamConfig(window_size=50),
        ) as service:
            service.register("s0")
            chunks = 0
            for start in range(0, series.size, 60):
                service.submit("s0", series[start:start + 60], on_complete=results.append)
                chunks += 1
            service.drain()
            report = service.report()
        assert len(results) == chunks
        resolved = sum(len(result.alarms) for result in results)
        assert resolved == report.alarms_raised
        dropped = sum(
            1 for result in results for alarm in result.alarms if alarm.dropped
        )
        assert dropped == sum(stream.dropped for stream in report.streams)

    def test_raising_on_complete_is_deferred_not_fatal(self):
        series = fleet(streams=1)["s0"]

        def bad(result: ChunkResult) -> None:
            raise RuntimeError("completion bug")

        service = ExplanationService(
            executor="inline", default_config=StreamConfig(window_size=WINDOW)
        )
        service.register("s0")
        service.submit("s0", series, on_complete=bad)
        with pytest.raises(Exception, match="completion bug"):
            service.drain()
        service.close()

    def test_alarm_listener_sees_every_alarm(self):
        series = fleet(streams=2)
        seen: list = []
        lock = threading.Lock()

        def listener(alarm) -> None:
            with lock:
                seen.append(alarm)

        with ExplanationService(
            executor="thread", default_config=StreamConfig(window_size=WINDOW)
        ) as service:
            service.add_alarm_listener(listener)
            for stream_id in sorted(series):
                service.register(stream_id)
            for stream_id, values in series.items():
                service.submit(stream_id, values)
            service.drain()
            report = service.report()
            service.remove_alarm_listener(listener)
        assert len(seen) == report.alarms_raised


# ----------------------------------------------------------------------
# The awaitable wrapper
# ----------------------------------------------------------------------
class TestAsyncExplanationService:
    def test_submit_returns_future_resolving_to_chunk_result(self):
        series = fleet(streams=2)

        async def run() -> tuple[list[ChunkResult], dict]:
            async with AsyncExplanationService(
                executor="thread", default_config=StreamConfig(window_size=WINDOW)
            ) as aio:
                futures = []
                for stream_id in sorted(series):
                    await aio.register(stream_id)
                for start in range(0, 500, 125):
                    for stream_id, values in series.items():
                        future = await aio.submit(stream_id, values[start:start + 125])
                        futures.append(future)
                results = await asyncio.gather(*futures)
                report = await aio.report()
                return results, canonical_report_dict(report.to_dict())

        results, canonical = asyncio.run(run())
        assert len(results) == 8
        assert all(isinstance(result, ChunkResult) for result in results)
        total = sum(len(stream["alarms"]) for stream in canonical["streams"])
        assert sum(len(result.alarms) for result in results) == total
        assert canonical == sequential_canonical(series)

    def test_explain_awaits_resolution_inline(self):
        series = fleet(streams=1)["s0"]

        async def run() -> ChunkResult:
            async with AsyncExplanationService(
                executor="inline", default_config=StreamConfig(window_size=WINDOW)
            ) as aio:
                await aio.register("s0")
                return await aio.explain("s0", series)

        result = asyncio.run(run())
        assert result.observations == series.size
        assert result.alarms and all(alarm.explained for alarm in result.alarms)

    def test_alarm_stream_yields_and_ends_on_close(self):
        series = fleet(streams=1)["s0"]

        async def run() -> list:
            aio = AsyncExplanationService(
                executor="thread", default_config=StreamConfig(window_size=WINDOW)
            )
            async with aio:
                stream = aio.alarms()
                await aio.register("s0")
                collected = []

                async def consume() -> None:
                    async for alarm in stream:
                        collected.append(alarm)

                consumer = asyncio.ensure_future(consume())
                result = await aio.explain("s0", series)
                assert result.alarms
                await aio.drain()
            # Closing the service closed the stream: the consumer ends.
            await asyncio.wait_for(consumer, timeout=10)
            return collected

        collected = asyncio.run(run())
        assert collected and all(alarm.explained for alarm in collected)

    def test_submit_awaits_capacity(self):
        """A saturated backend suspends the submitter instead of blocking."""
        series = fleet(streams=1)["s0"]

        async def run() -> None:
            async with AsyncExplanationService(
                executor="inline", default_config=StreamConfig(window_size=WINDOW)
            ) as aio:
                await aio.register("s0")
                gate = [False]
                aio.service.has_capacity = lambda: gate[0]  # saturate the probe

                async def open_gate() -> None:
                    await asyncio.sleep(0.15)
                    gate[0] = True

                opener = asyncio.ensure_future(open_gate())
                started = time.perf_counter()
                future = await aio.submit("s0", series[:200])
                waited = time.perf_counter() - started
                await future
                await opener
                assert waited >= 0.1, "submit did not await the capacity signal"

        asyncio.run(run())

    def test_periodic_snapshot_task_checkpoints(self, tmp_path):
        series = fleet(streams=1)["s0"]
        path = tmp_path / "service.snapshot"

        async def run() -> None:
            async with AsyncExplanationService(
                executor="inline",
                default_config=StreamConfig(window_size=WINDOW),
                snapshot_path=path,
                snapshot_interval=0.05,
            ) as aio:
                await aio.register("s0")
                await aio.explain("s0", series)
                deadline = time.perf_counter() + 5.0
                while not path.exists() and time.perf_counter() < deadline:
                    await asyncio.sleep(0.02)
            assert path.exists(), "the snapshot task never checkpointed"

        asyncio.run(run())
        snapshot = ServiceSnapshot.load(path)
        assert snapshot.stream_ids() == ["s0"]
        assert snapshot.resume_offsets()["s0"] == series.size

    def test_submit_raises_when_wrapped_service_closed_out_of_band(self):
        """Closing the shared service must end the capacity wait, not spin."""

        async def run() -> None:
            aio = AsyncExplanationService(executor="thread", workers=1)
            await aio.register("s0")
            aio.service.close()  # out-of-band: the wrapper does not know
            with pytest.raises(ValidationError, match="closed"):
                await asyncio.wait_for(aio.submit("s0", [1.0, 2.0]), timeout=10)

        asyncio.run(run())

    def test_rejects_service_kwargs_with_prebuilt_service(self):
        service = ExplanationService(executor="inline")
        with pytest.raises(ValidationError):
            AsyncExplanationService(service, workers=4)
        service.close()


# ----------------------------------------------------------------------
# Sources and the ingest server
# ----------------------------------------------------------------------
class TestSources:
    def test_wire_codec_round_trip_and_validation(self):
        event = {"stream": "s0", "values": [1.0, 2.0]}
        assert decode_event(encode_event(event).strip()) == event
        with pytest.raises(ValidationError, match="malformed"):
            decode_event(b"{nope")
        with pytest.raises(ValidationError, match="object"):
            decode_event(b"[1, 2]")

    def test_source_registry(self):
        assert {"tcp", "tail"} <= set(source_names())
        with pytest.raises(ValidationError, match="unknown ingest source"):
            make_source("carrier-pigeon")

        class Custom:
            name = "custom"

            async def run(self, handler):  # pragma: no cover - contract only
                pass

            def stop(self):  # pragma: no cover - contract only
                pass

        register_source("custom", Custom)
        assert isinstance(make_source("custom"), Custom)

    def test_tail_source_replays_file_with_parity(self, tmp_path):
        series = fleet(streams=2)
        events_path = tmp_path / "events.jsonl"
        with events_path.open("wb") as handle:
            for start in range(0, 500, 125):
                for stream_id, values in series.items():
                    handle.write(
                        encode_event(
                            {"stream": stream_id, "values": values[start:start + 125].tolist()}
                        )
                    )

        async def run() -> dict:
            async with AsyncExplanationService(
                executor="inline", default_config=StreamConfig(window_size=WINDOW)
            ) as aio:
                source = FileTailSource(str(events_path))
                server = AsyncIngestServer(aio, source)
                await server.run()
                report = await aio.report()
                return canonical_report_dict(report.to_dict())

        assert asyncio.run(run()) == sequential_canonical(series)

    def test_tcp_server_end_to_end_with_parity(self):
        series = fleet(streams=3)

        async def run() -> tuple[dict, dict]:
            loop = asyncio.get_running_loop()
            bound = loop.create_future()
            async with AsyncExplanationService(
                executor="inline", default_config=StreamConfig(window_size=WINDOW)
            ) as aio:
                task = asyncio.ensure_future(
                    serve_listen(aio, "127.0.0.1", 0, on_bound=bound.set_result)
                )
                host, port = await asyncio.wait_for(bound, timeout=10)
                reader, writer = await asyncio.open_connection(host, port)
                for start in range(0, 500, 125):
                    for stream_id, values in series.items():
                        writer.write(
                            encode_event(
                                {
                                    "stream": stream_id,
                                    "values": values[start:start + 125].tolist(),
                                }
                            )
                        )
                writer.write(encode_event({"op": "report"}))
                await writer.drain()
                reply = decode_event(await reader.readline())
                assert reply.get("ok"), reply
                writer.write(encode_event({"op": "shutdown"}))
                await writer.drain()
                assert decode_event(await reader.readline()).get("ok")
                writer.close()
                report = await asyncio.wait_for(task, timeout=30)
                return reply["report"], canonical_report_dict(report.to_dict())

        over_wire, final = asyncio.run(run())
        reference = sequential_canonical(series)
        assert canonical_json(over_wire) == canonical_json(reference)
        assert canonical_json(final) == canonical_json(reference)

    def test_tcp_server_answers_errors_and_keeps_serving(self):
        async def run() -> list[dict]:
            loop = asyncio.get_running_loop()
            bound = loop.create_future()
            async with AsyncExplanationService(
                executor="inline", default_config=StreamConfig(window_size=WINDOW)
            ) as aio:
                task = asyncio.ensure_future(
                    serve_listen(aio, "127.0.0.1", 0, on_bound=bound.set_result)
                )
                host, port = await asyncio.wait_for(bound, timeout=10)
                reader, writer = await asyncio.open_connection(host, port)
                replies = []
                for line in (
                    b"{broken json\n",
                    encode_event({"op": "no-such-op"}),
                    encode_event({"op": "ingest", "values": [1.0]}),  # missing stream
                    encode_event(
                        {"stream": "ok", "values": [1.0, 2.0], "await": True}
                    ),
                ):
                    writer.write(line)
                    await writer.drain()
                    replies.append(decode_event(await reader.readline()))
                writer.write(encode_event({"op": "shutdown"}))
                await writer.drain()
                await reader.readline()
                writer.close()
                await asyncio.wait_for(task, timeout=30)
                return replies

        replies = asyncio.run(run())
        assert "error" in replies[0]
        assert "error" in replies[1]
        assert "error" in replies[2]
        assert replies[3].get("ok") and replies[3]["stream"] == "ok"

    def test_register_op_with_overrides_survives_snapshot_restore(self, tmp_path):
        """A client-registered per-stream config must not brick warm restart.

        The CLI restore path used to cross-check *every* snapshot stream
        config against the flag defaults; a stream registered over the wire
        with overrides then failed the check forever.  In listen mode the
        snapshot is authoritative instead.
        """
        from repro.cli import main

        series = fleet(streams=1)["s0"]
        events_path = tmp_path / "events.jsonl"
        with events_path.open("wb") as handle:
            handle.write(
                encode_event(
                    {"op": "register", "stream": "s0", "config": {"window_size": 80}}
                )
            )
            handle.write(encode_event({"stream": "s0", "values": series.tolist()}))
        snapshot_path = tmp_path / "ckpt.snapshot"

        async def run_once() -> None:
            async with AsyncExplanationService(
                executor="inline", snapshot_path=snapshot_path, snapshot_interval=3600
            ) as aio:
                source = FileTailSource(str(events_path))
                await AsyncIngestServer(aio, source).run()
                await aio.snapshot_now()

        asyncio.run(run_once())
        snapshot = ServiceSnapshot.load(snapshot_path)
        assert snapshot.configs["s0"]["window_size"] == 80
        # The CLI warm-restarts from that snapshot with default flags: the
        # client-chosen config must be restored, not rejected.  (Uses an
        # immediate-shutdown client via the parser path being validated at
        # the restore step, which runs before the listener binds.)
        from repro.service.snapshot import SNAPSHOT_FILENAME

        snapshot_dir = tmp_path / "dir"
        snapshot_dir.mkdir()
        snapshot.save(snapshot_dir / SNAPSHOT_FILENAME)

        result: dict = {}

        def run_cli() -> None:
            result["code"] = main(
                ["serve", "--listen", "127.0.0.1:0", "--snapshot-dir", str(snapshot_dir)]
            )

        async def shut_down(port: int) -> None:
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(encode_event({"op": "shutdown"}))
            await writer.drain()
            await reader.readline()
            writer.close()

        captured = io.StringIO()
        with contextlib.redirect_stdout(captured):
            thread = threading.Thread(target=run_cli, daemon=True)
            thread.start()
            port = None
            deadline = time.perf_counter() + 15
            while port is None and time.perf_counter() < deadline:
                match = re.search(r"listening on 127\.0\.0\.1:(\d+)", captured.getvalue())
                if match:
                    port = int(match.group(1))
                else:
                    time.sleep(0.05)
            assert port is not None, captured.getvalue()
            asyncio.run(shut_down(port))
            thread.join(timeout=30)
        assert result.get("code") == 0, captured.getvalue()
        assert "warm restart: resumed 1 stream(s)" in captured.getvalue()

    def test_concurrent_auto_register_of_one_stream_never_errors(self):
        """Racing ingest events for the same unknown stream all succeed.

        The check-then-register window used to bounce the race loser's
        chunk with an 'already registered' error reply.
        """
        series = fleet(streams=1)["s0"]

        async def run() -> list:
            async with AsyncExplanationService(
                executor="inline", default_config=StreamConfig(window_size=WINDOW)
            ) as aio:
                server = AsyncIngestServer(aio, source=None)
                events = [
                    {"stream": "racy", "values": series[:50].tolist(), "await": True}
                    for _ in range(8)
                ]
                return await asyncio.gather(*(server.handle(dict(e)) for e in events))

        replies = asyncio.run(run())
        assert all(reply.get("ok") for reply in replies), replies

    def test_tcp_shutdown_completes_with_an_idle_second_client(self):
        """An idle connection must not pin the listener's shutdown.

        On Python >= 3.12.1 ``Server.wait_closed()`` also waits for client
        handlers, so the wind-down must force EOF on stragglers *before*
        waiting the server out.
        """

        async def run() -> None:
            loop = asyncio.get_running_loop()
            bound = loop.create_future()
            async with AsyncExplanationService(executor="inline") as aio:
                task = asyncio.ensure_future(
                    serve_listen(aio, "127.0.0.1", 0, on_bound=bound.set_result)
                )
                host, port = await asyncio.wait_for(bound, timeout=10)
                # Idle client: connects and never sends a byte.
                idle_reader, idle_writer = await asyncio.open_connection(host, port)
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(encode_event({"op": "shutdown"}))
                await writer.drain()
                assert decode_event(await reader.readline()).get("ok")
                writer.close()
                await asyncio.wait_for(task, timeout=30)
                idle_writer.close()

        asyncio.run(run())

    def test_unknown_stream_rejected_without_auto_register(self, tmp_path):
        events_path = tmp_path / "events.jsonl"
        events_path.write_bytes(encode_event({"stream": "ghost", "values": [1.0]}))
        replies: list[dict] = []

        async def run() -> None:
            async with AsyncExplanationService(executor="inline") as aio:
                source = FileTailSource(str(events_path), on_reply=replies.append)
                server = AsyncIngestServer(aio, source, auto_register=False)
                await server.run()

        asyncio.run(run())
        assert replies and "unknown stream" in replies[0]["error"]


# ----------------------------------------------------------------------
# The headline property: interleaving changes nothing
# ----------------------------------------------------------------------
def interleaved_canonical(
    series: dict[str, np.ndarray],
    cuts: list[int],
    stagger: list[int],
    executor: str,
    **kwargs,
) -> dict:
    """Replay with one async submitter per stream, interleaved by the loop.

    ``cuts`` picks each stream's chunking; ``stagger`` injects extra
    scheduling points so hypothesis explores many interleavings.
    """

    async def run() -> dict:
        async with AsyncExplanationService(
            executor=executor, default_config=StreamConfig(window_size=WINDOW), **kwargs
        ) as aio:
            for stream_id in sorted(series):
                await aio.register(stream_id)

            async def producer(index: int, stream_id: str) -> None:
                values = series[stream_id]
                chunk = 40 + cuts[index % len(cuts)]
                for hops in range(stagger[index % len(stagger)]):
                    await asyncio.sleep(0)
                futures = []
                for start in range(0, values.size, chunk):
                    piece = values[start:start + chunk]
                    if piece.size:
                        futures.append(await aio.submit(stream_id, piece))
                    await asyncio.sleep(0)
                results = await asyncio.gather(*futures)
                assert not any(result.lost for result in results)

            await asyncio.gather(
                *(
                    producer(index, stream_id)
                    for index, stream_id in enumerate(sorted(series))
                )
            )
            report = await aio.report()
            return canonical_report_dict(report.to_dict())

    return asyncio.run(run())


class TestInterleavedSubmittersParity:
    @settings(max_examples=5, deadline=None)
    @given(
        streams=st.integers(2, 4),
        cuts=st.lists(st.integers(0, 90), min_size=1, max_size=4),
        stagger=st.lists(st.integers(0, 3), min_size=1, max_size=4),
    )
    def test_inline_executor_parity(self, streams, cuts, stagger):
        series = fleet(streams=streams, size=400)
        reference = canonical_json(sequential_canonical(series))
        interleaved = canonical_json(
            interleaved_canonical(series, cuts, stagger, "inline")
        )
        assert interleaved == reference

    @settings(
        max_examples=2,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        cuts=st.lists(st.integers(0, 90), min_size=1, max_size=3),
        stagger=st.lists(st.integers(0, 3), min_size=1, max_size=3),
    )
    def test_process_executor_parity(self, cuts, stagger):
        series = fleet(streams=3, size=400)
        reference = canonical_json(sequential_canonical(series))
        interleaved = canonical_json(
            interleaved_canonical(series, cuts, stagger, "process", shards=2)
        )
        assert interleaved == reference
