"""Tests for per-chunk tracing, the flight recorder and structured logs.

Covers the trace primitives (spans, completion accounting, cross-process
re-parenting), the tracer's head-based sampling and slow-exemplar
reservoir, Chrome trace-event export and its structural validator, the
flight recorder's ring buffers and crash dumps, the JSON event logger,
and the end-to-end wiring: trace propagation under all three executors,
shard crash handling (lost-chunk spans close with an error status and
the recorder dumps a post-mortem file), the ``/healthz`` endpoint, the
``trace`` wire op, the ``repro trace`` CLI command and the versioned
``BENCH_*.json`` envelope.
"""

from __future__ import annotations

import asyncio
import io
import json

import numpy as np
import pytest

from benchmarks.conftest import (
    BENCH_SCHEMA,
    bench_envelope,
    save_bench_json,
    validate_bench_envelope,
)
from repro.aio import AsyncExplanationService, AsyncIngestServer, encode_event, decode_event
from repro.datasets.synthetic import drifting_series
from repro.exceptions import ValidationError
from repro.io.export import save_chrome_trace
from repro.obs.log import JsonLogger
from repro.obs.recorder import FLIGHT_SCHEMA, SERVICE_CHANNEL, FlightRecorder
from repro.obs.trace import (
    TRACE_ID_PREFIX,
    TRACE_SCHEMA,
    ChunkTrace,
    TraceContext,
    Tracer,
    span_dict,
    validate_chrome_trace,
)
from repro.service import ExplanationService, StreamConfig

WINDOW = 150


@pytest.fixture
def drifted_values() -> np.ndarray:
    values, _ = drifting_series(length=1200, drift_start=600, drift_magnitude=3.0, seed=5)
    return values


# ----------------------------------------------------------------------
# Span and trace primitives
# ----------------------------------------------------------------------
class TestSpanPrimitives:
    def test_finish_is_idempotent_first_call_wins(self):
        trace = ChunkTrace("repro_00000001", "s", clock=lambda: 10.0)
        span = trace.start_span("detect")
        span.finish("ok", clock=lambda: 12.5)
        span.finish("error", clock=lambda: 99.0)
        assert span.finished
        assert span.duration == pytest.approx(2.5)
        assert span.status == "ok"

    def test_span_dict_is_wire_safe(self):
        raw = span_dict("batch_wait", 1.0, 0.25, parent=3, attrs={"shard": "shard-1"})
        assert raw == {
            "name": "batch_wait",
            "start": 1.0,
            "duration": 0.25,
            "parent": 3,
            "status": "ok",
            "attrs": {"shard": "shard-1"},
        }
        # Must survive the wire: picklable plain types only.
        assert json.loads(json.dumps(raw)) == raw


class TestChunkTrace:
    def test_arm_then_children_finish_the_chunk(self):
        trace = ChunkTrace("repro_00000001", "s")
        assert trace.arm(2) is False
        assert trace.child_done() is False
        assert trace.child_done() is True
        assert trace.finalize() is True
        assert trace.finalized

    def test_children_racing_ahead_of_arm_are_credited(self):
        # The inline executor runs jobs synchronously during dispatch, so
        # child_done can land before arm.
        trace = ChunkTrace("repro_00000001", "s")
        assert trace.child_done() is False
        assert trace.child_done() is False
        assert trace.arm(2) is True  # both children already accounted

    def test_finalize_closes_unfinished_spans_with_final_status(self):
        trace = ChunkTrace("repro_00000001", "s", clock=lambda: 1.0)
        open_span = trace.start_span("wire_roundtrip")
        done_span = trace.start_span("detect")
        done_span.finish("ok", clock=lambda: 1.5)
        assert trace.finalize("lost", "shard shard-0 died", clock=lambda: 2.0)
        assert trace.error == "shard shard-0 died"
        assert trace.status == "lost"
        assert open_span.status == "lost"
        assert all(span.finished for span in trace.spans)
        # Already-closed spans keep their own status.
        assert done_span.status == "ok"

    def test_finalize_is_idempotent(self):
        trace = ChunkTrace("repro_00000001", "s")
        assert trace.finalize("ok") is True
        assert trace.finalize("error", "late") is False
        assert trace.status == "ok"
        assert trace.error is None

    def test_extend_reparents_unknown_worker_parents_under_wire_span(self):
        trace = ChunkTrace("repro_00000001", "s")
        wire = trace.start_span("wire_roundtrip")
        # 999 is a span id from the worker's private numbering: unknown here.
        trace.extend(
            [
                span_dict("batch_wait", 1.0, 0.1, parent=999),
                span_dict("detect", 1.1, 0.2, parent=wire.span_id),
            ],
            parent=wire,
        )
        by_name = {span.name: span for span in trace.spans}
        assert by_name["batch_wait"].parent_id == wire.span_id
        assert by_name["detect"].parent_id == wire.span_id

    def test_wire_context_is_picklable_coordinates(self):
        trace = ChunkTrace("repro_00000007", "s", sampled=True)
        wire = trace.start_span("wire_roundtrip")
        context = trace.wire_context(wire)
        assert context == TraceContext("repro_00000007", wire.span_id, True)

    def test_stage_durations_keep_the_max_per_stage(self):
        trace = ChunkTrace("repro_00000001", "s")
        trace.add_span("detect", 0.0, 0.1)
        trace.add_span("detect", 0.0, 0.4)
        trace.add_span("not_a_stage", 0.0, 9.0)
        assert trace.stage_durations() == {"detect": pytest.approx(0.4)}


# ----------------------------------------------------------------------
# Tracer: sampling, exemplars, export
# ----------------------------------------------------------------------
class TestTracer:
    def test_sampling_is_deterministic_for_a_seed(self):
        def sampled_flags(seed: int) -> list[bool]:
            tracer = Tracer(0.5, seed=seed)
            return [tracer.start_chunk("s").sampled for _ in range(50)]

        assert sampled_flags(7) == sampled_flags(7)
        assert sampled_flags(7) != sampled_flags(8)

    def test_trace_ids_are_serial_with_the_public_prefix(self):
        tracer = Tracer(1.0)
        ids = [tracer.start_chunk("s").trace_id for _ in range(3)]
        assert ids == ["repro_00000001", "repro_00000002", "repro_00000003"]
        assert all(tid.startswith(TRACE_ID_PREFIX) for tid in ids)

    def test_finish_chunk_is_idempotent_in_stats(self):
        tracer = Tracer(1.0)
        trace = tracer.start_chunk("s")
        tracer.finish_chunk(trace, "error", "boom")
        tracer.finish_chunk(trace)  # late duplicate: ignored
        stats = tracer.stats()
        assert stats["started"] == 1
        assert stats["finished"] == 1
        assert stats["errors"] == 1

    def test_unsampled_slow_chunks_survive_as_exemplars(self):
        clock = [0.0]
        tracer = Tracer(0.0, exemplar_slots=1, clock=lambda: clock[0])
        durations = {"fast": 0.01, "slow": 5.0, "medium": 1.0}
        for name, duration in durations.items():
            trace = tracer.start_chunk(name)
            trace.add_span("detect", 0.0, duration)
            tracer.finish_chunk(trace)
        assert tracer.stats()["retained"] == 0  # rate 0: nothing sampled
        exemplars = tracer.exemplar_ids()
        assert len(exemplars["detect"]) == 1
        slow_id = exemplars["detect"][0]
        # The exemplar is the slowest chunk, and it is exported.
        kept = {trace.stream_id for trace in tracer.traces()}
        assert kept == {"slow"}
        assert slow_id == tracer.traces()[0].trace_id

    def test_retention_buffer_is_bounded(self):
        tracer = Tracer(1.0, max_traces=4, exemplar_slots=0)
        for _ in range(10):
            tracer.finish_chunk(tracer.start_chunk("s"))
        assert tracer.stats()["retained"] == 4

    def test_chrome_trace_is_structurally_valid(self):
        clock = [100.0]
        tracer = Tracer(1.0, clock=lambda: clock[0])
        trace = tracer.start_chunk("s")
        clock[0] = 100.5
        tracer.finish_chunk(trace)
        payload = tracer.chrome_trace()
        assert validate_chrome_trace(payload) == []
        assert payload["otherData"] == {"schema": TRACE_SCHEMA, "traces": 1}
        complete = [event for event in payload["traceEvents"] if event["ph"] == "X"]
        assert complete[0]["name"] == "chunk"
        assert complete[0]["dur"] == pytest.approx(0.5e6)

    def test_validator_rejects_malformed_payloads(self):
        assert validate_chrome_trace([]) == ["payload is list, expected dict"]
        assert validate_chrome_trace({}) == ["traceEvents missing or not a list"]
        problems = validate_chrome_trace(
            {"traceEvents": [{"ph": "X", "name": "x", "pid": 1, "tid": 1, "ts": -1, "dur": 0}]}
        )
        assert any("ts" in problem for problem in problems)

    def test_sample_rate_is_validated(self):
        with pytest.raises(ValueError):
            Tracer(1.5)


class TestSaveChromeTrace:
    def test_round_trips_through_disk(self, tmp_path):
        tracer = Tracer(1.0)
        tracer.finish_chunk(tracer.start_chunk("s"))
        path = save_chrome_trace(tracer.chrome_trace(), tmp_path / "deep" / "trace.json")
        assert validate_chrome_trace(json.loads(path.read_text())) == []

    def test_rejects_non_trace_payloads(self, tmp_path):
        with pytest.raises(ValidationError):
            save_chrome_trace({"spans": []}, tmp_path / "trace.json")


# ----------------------------------------------------------------------
# Flight recorder
# ----------------------------------------------------------------------
class TestFlightRecorder:
    def test_rings_are_bounded_per_channel(self):
        recorder = FlightRecorder(capacity=3, clock=lambda: 0.0)
        for index in range(10):
            recorder.record("shard-0", "ingest", seq=index)
        recorder.record("shard-1", "spawn")
        assert [event["seq"] for event in recorder.events("shard-0")] == [7, 8, 9]
        assert recorder.channels() == ["shard-0", "shard-1"]

    def test_none_channel_lands_on_the_service_channel(self):
        recorder = FlightRecorder()
        recorder.record(None, "resize", shards=3)
        assert recorder.events(SERVICE_CHANNEL)[0]["event"] == "resize"

    def test_dump_writes_schema_tagged_file(self, tmp_path):
        clock = [123.0]
        recorder = FlightRecorder(dump_dir=tmp_path / "flight", clock=lambda: clock[0])
        recorder.record("shard-0", "crash", exitcode=17)
        path = recorder.dump("crash shard-0")  # space must be sanitised
        assert path is not None and path.name == "flight-crash-shard-0-001.json"
        payload = json.loads(path.read_text())
        assert payload["schema"] == FLIGHT_SCHEMA
        assert payload["reason"] == "crash shard-0"
        assert payload["channels"]["shard-0"][0]["exitcode"] == 17

    def test_dump_without_destination_returns_none(self):
        recorder = FlightRecorder()
        assert recorder.dump("manual") is None

    def test_capacity_is_validated(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_log_handler_routes_shard_field_to_channel(self):
        recorder = FlightRecorder()
        logger = JsonLogger(clock=lambda: 1.0)
        logger.add_handler(recorder.log_handler)
        logger.info("respawn", shard="shard-2", pid=42)
        events = recorder.events("shard-2")
        assert events and events[0]["event"] == "respawn"
        assert events[0]["pid"] == 42


# ----------------------------------------------------------------------
# Structured JSON logging
# ----------------------------------------------------------------------
class TestJsonLogger:
    def test_records_are_one_json_object_per_line(self):
        stream = io.StringIO()
        logger = JsonLogger(stream, clock=lambda: 5.0)
        logger.info("spawn", shard="shard-0")
        logger.error("crash", shard="shard-0", exitcode=17)
        lines = [json.loads(line) for line in stream.getvalue().splitlines()]
        assert lines[0] == {"ts": 5.0, "level": "info", "event": "spawn", "shard": "shard-0"}
        assert lines[1]["level"] == "error" and lines[1]["exitcode"] == 17

    def test_bound_context_rides_every_record(self):
        stream = io.StringIO()
        logger = JsonLogger(stream, clock=lambda: 1.0).bind(trace_id="repro_00000001")
        logger.debug("detect")
        assert json.loads(stream.getvalue())["trace_id"] == "repro_00000001"

    def test_handler_errors_never_propagate(self):
        logger = JsonLogger(clock=lambda: 1.0)
        logger.add_handler(lambda record: (_ for _ in ()).throw(RuntimeError("observer bug")))
        record = logger.warning("drop", stream="s")
        assert record["event"] == "drop"


# ----------------------------------------------------------------------
# BENCH_*.json envelope (benchmarks/conftest helpers)
# ----------------------------------------------------------------------
class TestBenchEnvelope:
    def test_envelope_stamps_schema_name_and_timestamp(self):
        payload = bench_envelope("rebalance", {"speedup": 2.0})
        assert validate_bench_envelope(payload, "rebalance") == []
        assert payload["schema"] == BENCH_SCHEMA
        assert payload["speedup"] == 2.0

    def test_save_round_trips_and_validates(self, tmp_path):
        path = save_bench_json("smoke", {"ok": True}, tmp_path / "results" / "BENCH_x.json")
        assert validate_bench_envelope(json.loads(path.read_text()), "smoke") == []

    def test_validator_names_each_problem(self):
        problems = validate_bench_envelope(
            {"schema": "other/9", "generated_at": "yesterday"}, "x"
        )
        assert len(problems) == 3
        assert validate_bench_envelope([]) == ["payload is list, expected dict"]
        assert validate_bench_envelope(
            bench_envelope("a", {}), "b"
        ) == ["benchmark is 'a', expected 'b'"]


# ----------------------------------------------------------------------
# End-to-end: trace propagation under every executor
# ----------------------------------------------------------------------
class TestTracePropagation:
    @pytest.mark.parametrize(
        "executor,kwargs,expected_stages",
        [
            ("inline", {}, {"ingest_enqueue", "detect", "explain"}),
            ("thread", {"workers": 2}, {"ingest_enqueue", "batch_wait", "detect", "explain"}),
            (
                "process",
                {"shards": 2},
                {"ingest_enqueue", "batch_wait", "detect", "explain", "wire_roundtrip"},
            ),
        ],
    )
    def test_span_tree_covers_the_executor_stages(
        self, executor, kwargs, expected_stages, drifted_values
    ):
        with ExplanationService(
            executor=executor,
            tracing=True,
            trace_sample=1.0,
            default_config=StreamConfig(window_size=WINDOW),
            **kwargs,
        ) as service:
            service.register("a")
            for start in range(0, drifted_values.size, 200):
                service.submit("a", drifted_values[start:start + 200])
            service.drain()
            tracer = service.tracer
            traces = tracer.traces()
            payload = service.trace_export()
        stats = tracer.stats()
        assert stats["started"] == stats["finished"] > 0
        assert stats["errors"] == 0
        seen_stages = {span.name for trace in traces for span in trace.spans}
        assert expected_stages <= seen_stages
        # Every trace is complete: root closed ok, no dangling spans.
        for trace in traces:
            assert trace.finalized and trace.status == "ok"
            assert all(span.finished for span in trace.spans)
            span_ids = {span.span_id for span in trace.spans}
            assert all(
                span.parent_id in span_ids for span in trace.spans if span.parent_id is not None
            )
        if executor == "process":
            wire_parents = {
                span.span_id
                for trace in traces
                for span in trace.spans
                if span.name == "wire_roundtrip"
            }
            worker_spans = [
                span
                for trace in traces
                for span in trace.spans
                if span.name in ("detect", "explain") and span.parent_id in wire_parents
            ]
            assert worker_spans, "worker spans must re-parent under wire_roundtrip"
            assert any(span.attrs.get("shard") for span in worker_spans)
        assert validate_chrome_trace(payload) == []
        assert payload["otherData"]["traces"] == len(traces)

    def test_exemplar_ids_surface_in_the_report_latency(self, drifted_values):
        with ExplanationService(
            metrics=True,
            tracing=True,
            trace_sample=0.0,  # exemplars are independent of sampling
            default_config=StreamConfig(window_size=WINDOW),
        ) as service:
            service.register("a")
            for start in range(0, drifted_values.size, 200):
                service.submit("a", drifted_values[start:start + 200])
            report = service.report()
        detect = report.latency["detect"]
        assert detect["count"] > 0
        assert detect["exemplars"]
        assert all(tid.startswith(TRACE_ID_PREFIX) for tid in detect["exemplars"])
        assert "slowest: repro_" in report.render(alarms=False)

    def test_default_sampling_retains_a_deterministic_subset(self, drifted_values):
        def retained_ids() -> list[str]:
            with ExplanationService(
                executor="inline",
                tracing=True,
                trace_sample=0.5,
                trace_seed=11,
                default_config=StreamConfig(window_size=WINDOW),
            ) as service:
                service.register("a")
                for start in range(0, drifted_values.size, 100):
                    service.submit("a", drifted_values[start:start + 100])
                service.drain()
                return sorted(
                    trace.trace_id for trace in service.tracer.traces() if trace.sampled
                )

        first, second = retained_ids(), retained_ids()
        assert first == second
        assert 0 < len(first) < drifted_values.size // 100 + 1

    def test_tracing_disabled_exports_an_empty_valid_payload(self, drifted_values):
        with ExplanationService(default_config=StreamConfig(window_size=WINDOW)) as service:
            service.register("a")
            service.submit("a", drifted_values[:400])
            payload = service.trace_export()
        assert service.tracer is None and service.recorder is None
        assert validate_chrome_trace(payload) == []
        assert payload["traceEvents"] == []


# ----------------------------------------------------------------------
# Shard crash: lost spans close, the recorder dumps a post-mortem
# ----------------------------------------------------------------------
class TestCrashFlightPath:
    def test_lost_chunk_spans_close_with_error_and_recorder_dumps(
        self, tmp_path, drifted_values
    ):
        trace_dir = tmp_path / "telemetry"
        with ExplanationService(
            executor="process",
            shards=2,
            tracing=True,
            trace_sample=1.0,
            trace_dir=trace_dir,
            default_config=StreamConfig(window_size=WINDOW),
        ) as service:
            service.register("a")
            service.register("b")
            executor = service.executor
            service.submit("a", drifted_values[:400])
            service.drain()
            # Freeze a's shard so the next chunk provably sits unprocessed
            # in its queue, then hard-kill it: the chunk can never be
            # acknowledged and must be abandoned as lost.
            import os
            import signal
            import time

            process = executor._shards[executor.shard_of("a")].process
            os.kill(process.pid, signal.SIGSTOP)
            service.submit("a", drifted_values[400:800])
            os.kill(process.pid, signal.SIGKILL)
            deadline = time.monotonic() + 30
            while process.is_alive() and time.monotonic() < deadline:
                time.sleep(0.01)
            service.drain()
            tracer = service.tracer
            recorder = service.recorder
            report = service.report()

        assert report.batcher_stats["restarts"] >= 1
        stats = tracer.stats()
        assert stats["started"] == stats["finished"]
        assert stats["errors"] >= 1
        lost = [trace for trace in tracer.traces() if trace.status == "lost"]
        assert lost, "the abandoned chunk's trace must be retained with its error"
        for trace in lost:
            assert "died" in (trace.error or "")
            assert all(span.finished for span in trace.spans)
            wire = [span for span in trace.spans if span.name == "wire_roundtrip"]
            assert wire and wire[0].status == "lost"

        # The recorder saw the lifecycle and persisted a crash dump.
        events = {event["event"] for event in recorder.events()}
        assert {"spawn", "crash", "chunks_lost", "respawn"} <= events
        dumps = list(trace_dir.glob("flight-crash-*.json"))
        assert dumps, "a shard crash must leave a flight-recorder file"
        payload = json.loads(dumps[0].read_text())
        assert payload["schema"] == FLIGHT_SCHEMA
        assert any(
            event["event"] == "crash"
            for channel in payload["channels"].values()
            for event in channel
        )


# ----------------------------------------------------------------------
# /healthz endpoint and 404 discoverability
# ----------------------------------------------------------------------
class TestHealthEndpoint:
    @staticmethod
    def _request(path: str, health=None) -> tuple[str, str]:
        from repro.obs.exporter import start_metrics_server

        async def run() -> tuple[str, str]:
            bound: asyncio.Future = asyncio.get_running_loop().create_future()
            server = await start_metrics_server(
                lambda: "# metrics\n",
                health=health,
                on_bound=lambda addr: bound.set_result(addr),
            )
            try:
                host, port = await asyncio.wait_for(bound, timeout=5)
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(f"GET {path} HTTP/1.1\r\nHost: x\r\n\r\n".encode())
                await writer.drain()
                payload = await asyncio.wait_for(reader.read(), timeout=5)
                writer.close()
                head, _, body = payload.decode().partition("\r\n\r\n")
                return head.split("\r\n")[0], body
            finally:
                server.close()
                await server.wait_closed()

        return asyncio.run(run())

    def test_healthz_serves_the_health_payload_as_json(self):
        status, body = self._request("/healthz", health=lambda: {"status": "ok", "streams": 2})
        assert status == "HTTP/1.1 200 OK"
        assert json.loads(body) == {"status": "ok", "streams": 2}

    def test_healthz_is_404_when_no_health_callable_is_wired(self):
        status, body = self._request("/healthz")
        assert status == "HTTP/1.1 404 Not Found"
        assert "known paths: /, /metrics" in body
        assert "/healthz" not in body

    def test_404_lists_healthz_when_available(self):
        status, body = self._request("/nope", health=lambda: {"status": "ok"})
        assert status == "HTTP/1.1 404 Not Found"
        assert "known paths: /, /metrics, /healthz" in body

    def test_service_health_payload_shape(self, drifted_values):
        with ExplanationService(default_config=StreamConfig(window_size=WINDOW)) as service:
            service.register("a")
            service.submit("a", drifted_values[:200])
            health = service.health()
        assert health["status"] == "ok"
        assert health["streams"] == 1
        assert health["uptime_seconds"] >= 0
        assert service.health()["status"] == "closed"


# ----------------------------------------------------------------------
# Report rendering: latency rows only when sampled
# ----------------------------------------------------------------------
class TestReportLatencyRendering:
    @staticmethod
    def _report(latency: dict):
        from repro.service.results import ServiceReport

        return ServiceReport(
            streams=[],
            cache_stats={},
            batcher_stats={"executor": "inline"},
            elapsed_seconds=1.0,
            cache_hit_rate=0.0,
            latency=latency,
        )

    def test_metrics_disabled_renders_no_latency_section(self):
        assert "stage latency" not in self._report({}).render()

    def test_zero_count_stages_are_suppressed(self):
        rendered = self._report(
            {
                "detect": {"count": 3, "p50": 0.001, "p95": 0.002, "p99": 0.003},
                "wire_roundtrip": {"count": 0, "p50": None, "p95": None, "p99": None},
            }
        ).render()
        assert "stage latency" in rendered
        assert "detect" in rendered
        assert "wire_roundtrip" not in rendered

    def test_exemplar_ids_render_alongside_their_stage(self):
        rendered = self._report(
            {
                "detect": {
                    "count": 3,
                    "p50": 0.001,
                    "p95": 0.002,
                    "p99": 0.003,
                    "exemplars": ["repro_00000004"],
                }
            }
        ).render()
        assert "slowest: repro_00000004" in rendered


# ----------------------------------------------------------------------
# The trace wire op
# ----------------------------------------------------------------------
class TestTraceWireOp:
    def test_trace_op_returns_perfetto_payload_over_the_wire(self, drifted_values):
        from repro.aio import serve_listen

        async def run() -> dict:
            loop = asyncio.get_running_loop()
            bound = loop.create_future()
            async with AsyncExplanationService(
                executor="inline",
                tracing=True,
                trace_sample=1.0,
                default_config=StreamConfig(window_size=WINDOW),
            ) as aio:
                task = asyncio.ensure_future(
                    serve_listen(aio, "127.0.0.1", 0, on_bound=bound.set_result)
                )
                host, port = await asyncio.wait_for(bound, timeout=10)
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(
                    encode_event(
                        {"stream": "a", "values": drifted_values[:400].tolist(), "await": True}
                    )
                )
                await writer.drain()
                assert decode_event(await reader.readline()).get("ok")
                writer.write(encode_event({"op": "trace"}))
                await writer.drain()
                reply = decode_event(await reader.readline())
                writer.write(encode_event({"op": "shutdown"}))
                await writer.drain()
                await reader.readline()
                writer.close()
                await asyncio.wait_for(task, timeout=30)
                return reply

        reply = asyncio.run(run())
        assert reply["ok"]
        assert validate_chrome_trace(reply["trace"]) == []
        assert reply["trace"]["otherData"]["traces"] >= 1

    def test_async_health_mirrors_the_engine(self):
        async def run() -> dict:
            async with AsyncExplanationService(
                executor="inline", default_config=StreamConfig(window_size=WINDOW)
            ) as aio:
                return await aio.health()

        assert asyncio.run(run())["status"] == "ok"

    def test_server_class_answers_trace_when_disabled(self, drifted_values):
        async def run() -> dict:
            async with AsyncExplanationService(
                executor="inline", default_config=StreamConfig(window_size=WINDOW)
            ) as aio:
                server = AsyncIngestServer(aio, source=None)
                return await server.handle({"op": "trace"})

        reply = asyncio.run(run())
        assert reply["ok"]
        assert validate_chrome_trace(reply["trace"]) == []
        assert reply["trace"]["traceEvents"] == []


# ----------------------------------------------------------------------
# CLI: repro trace and serve --trace-dir
# ----------------------------------------------------------------------
class TestTraceCli:
    @pytest.fixture
    def series_file(self, tmp_path):
        values, _ = drifting_series(length=1200, drift_start=600, drift_magnitude=3.0, seed=5)
        path = tmp_path / "sensor.csv"
        path.write_text("\n".join(str(v) for v in values) + "\n")
        return str(path)

    def test_trace_command_writes_a_perfetto_file(self, series_file, tmp_path, capsys):
        from repro.cli import main

        output = tmp_path / "out" / "trace.json"
        code = main(["trace", series_file, "--window", "150", "--output", str(output)])
        assert code == 0
        payload = json.loads(output.read_text())
        assert validate_chrome_trace(payload) == []
        assert payload["otherData"]["traces"] >= 1
        out = capsys.readouterr().out
        assert "traced" in out and str(output) in out

    def test_trace_command_rejects_bad_sample_rate(self, series_file):
        from repro.cli import main

        assert main(["trace", series_file, "--sample", "2.0"]) != 0

    def test_trace_shards_require_process_executor(self, series_file):
        from repro.cli import main

        assert main(["trace", series_file, "--shards", "2"]) != 0

    def test_serve_trace_dir_writes_trace_and_reports(self, series_file, tmp_path, capsys):
        from repro.cli import main

        trace_dir = tmp_path / "telemetry"
        code = main(
            [
                "serve",
                series_file,
                "--window",
                "150",
                "--summary-only",
                "--trace-dir",
                str(trace_dir),
            ]
        )
        assert code == 0
        payload = json.loads((trace_dir / "trace.json").read_text())
        assert validate_chrome_trace(payload) == []
        assert "chunk traces written to" in capsys.readouterr().out
