"""Property-based tests: IncrementalKS matches the batch statistic.

The incremental structure must agree with :func:`repro.core.ks.ks_statistic`
after *any* interleaved sequence of inserts and deletes on either sample —
that is the invariant the drift detectors rely on.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.ks import critical_value, ks_statistic
from repro.drift.incremental_ks import IncrementalKS

# A bounded value universe makes duplicate inserts (and hence exercised
# multiplicity counters) likely.
values = st.integers(min_value=0, max_value=8).map(lambda v: v / 2.0)
samples = st.sampled_from(["reference", "test"])

#: One step of an interleaved workload: insert a value, or delete the
#: element at a (wrapped) index of the named sample's current contents.
operations = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), samples, values),
        st.tuples(st.just("delete"), samples, st.integers(min_value=0, max_value=200)),
    ),
    min_size=1,
    max_size=120,
)

COMMON_SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def apply_operations(operations_list) -> tuple[IncrementalKS, list[float], list[float]]:
    """Replay a workload on an IncrementalKS and on plain shadow lists."""
    incremental = IncrementalKS(seed=7)
    shadow = {"reference": [], "test": []}
    for operation in operations_list:
        if operation[0] == "insert":
            _, sample, value = operation
            incremental.insert(value, sample)
            shadow[sample].append(value)
        else:
            _, sample, index = operation
            if not shadow[sample]:
                continue  # deleting from an empty sample is a no-op workload step
            value = shadow[sample].pop(index % len(shadow[sample]))
            incremental.remove(value, sample)
    return incremental, shadow["reference"], shadow["test"]


@COMMON_SETTINGS
@given(operations)
def test_statistic_matches_batch_after_interleaved_updates(operations_list):
    incremental, reference, test = apply_operations(operations_list)
    assert incremental.reference_size == len(reference)
    assert incremental.test_size == len(test)
    if reference and test:
        expected = ks_statistic(np.array(reference), np.array(test))
        assert incremental.statistic() == pytest.approx(expected, abs=1e-12)


@COMMON_SETTINGS
@given(operations, st.sampled_from([0.01, 0.05, 0.2]))
def test_rejection_matches_batch_decision(operations_list, alpha):
    incremental, reference, test = apply_operations(operations_list)
    if not reference or not test:
        return
    expected = ks_statistic(np.array(reference), np.array(test)) > critical_value(
        alpha, len(reference), len(test)
    )
    assert incremental.rejected(alpha) == expected


@COMMON_SETTINGS
@given(st.lists(values, min_size=1, max_size=40), st.lists(values, min_size=1, max_size=40))
def test_insert_then_remove_everything_is_clean(reference_values, test_values):
    """Filling and fully draining both samples leaves an empty structure."""
    incremental = IncrementalKS(seed=3)
    for value in reference_values:
        incremental.insert(value, "reference")
    for value in test_values:
        incremental.insert(value, "test")
    for value in test_values:
        incremental.remove(value, "test")
    for value in reference_values:
        incremental.remove(value, "reference")
    assert incremental.reference_size == 0
    assert incremental.test_size == 0
