"""Tests for the experiment runners (repro.experiments)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ks import ks_test
from repro.experiments.case_study import format_case_study, run_case_study
from repro.experiments.config import ExperimentConfig
from repro.experiments.conciseness import format_ise_table, run_conciseness
from repro.experiments.contrastivity import format_reverse_factor_table, run_contrastivity
from repro.experiments.datasets_summary import dataset_statistics, format_dataset_statistics
from repro.experiments.effectiveness import format_rmse_table, run_effectiveness
from repro.experiments.evaluation import run_methods_on_cases
from repro.experiments.lower_bound import format_estimation_error_table, run_lower_bound_study
from repro.experiments.methods import build_methods, ordered_methods
from repro.experiments.reporting import format_table
from repro.experiments.runtime import (
    format_runtime_table,
    run_runtime_synthetic,
    run_runtime_timeseries,
)
from repro.experiments.workloads import build_failed_test_cases, preference_for_window
from repro.exceptions import ValidationError


@pytest.fixture(scope="module")
def smoke_config() -> ExperimentConfig:
    return ExperimentConfig(
        window_sizes=(100,),
        cases_per_dataset=2,
        series_per_family=1,
        length_scale=0.2,
        synthetic_sizes=(400,),
        seed=7,
    )


@pytest.fixture(scope="module")
def smoke_cases(smoke_config):
    return build_failed_test_cases(smoke_config, families=("ART", "AWS"))


@pytest.fixture(scope="module")
def smoke_records(smoke_config, smoke_cases):
    methods = build_methods(smoke_config, include=("moche", "greedy", "d3"))
    return run_methods_on_cases(smoke_cases, methods)


class TestConfig:
    def test_paper_and_smoke_configs_valid(self):
        assert ExperimentConfig.paper().window_sizes[-1] == 2000
        assert ExperimentConfig.smoke().cases_per_dataset <= 5

    def test_invalid_config_rejected(self):
        with pytest.raises(ValidationError):
            ExperimentConfig(alpha=2.0)
        with pytest.raises(ValidationError):
            ExperimentConfig(window_sizes=())
        with pytest.raises(ValidationError):
            ExperimentConfig(cases_per_dataset=0)


class TestWorkloads:
    def test_cases_are_failed_ks_tests_with_valid_preferences(self, smoke_cases, smoke_config):
        assert smoke_cases
        for case in smoke_cases:
            assert ks_test(case.reference, case.test, smoke_config.alpha).rejected
            assert len(case.preference) == case.m
            assert case.dataset in ("ART", "AWS")

    def test_cases_capped_per_dataset(self, smoke_cases, smoke_config):
        for family in ("ART", "AWS"):
            count = sum(case.dataset == family for case in smoke_cases)
            assert count <= smoke_config.cases_per_dataset

    def test_preference_for_window_valid(self, rng):
        reference = rng.normal(size=120)
        test = rng.normal(size=120)
        preference = preference_for_window(reference, test, seed=0)
        assert len(preference) == 120

    def test_workload_reproducible(self, smoke_config):
        first = build_failed_test_cases(smoke_config, families=("ART",))
        second = build_failed_test_cases(smoke_config, families=("ART",))
        assert len(first) == len(second)
        for a, b in zip(first, second):
            assert np.array_equal(a.test, b.test)


class TestMethods:
    def test_build_all_methods(self):
        methods = build_methods(ExperimentConfig.smoke(), include_ablation=True)
        assert set(methods) == {
            "moche", "greedy", "corner_search", "grace", "d3", "stomp",
            "series2graph", "moche_ns",
        }

    def test_include_filter(self):
        methods = build_methods(ExperimentConfig.smoke(), include=("moche", "greedy"))
        assert set(methods) == {"moche", "greedy"}

    def test_ordered_methods_puts_moche_first(self):
        order = ordered_methods({"d3": 1, "moche": 2, "custom": 3})
        assert order[0] == "moche"
        assert order[-1] == "custom"


class TestEvaluationAndMetrics:
    def test_records_cover_all_cases_and_methods(self, smoke_records, smoke_cases):
        assert len(smoke_records) == len(smoke_cases)
        for record in smoke_records:
            assert set(record.explanations) == {"moche", "greedy", "d3"}

    def test_moche_always_smallest(self, smoke_records):
        for record in smoke_records:
            moche_size = record.explanations["moche"].size
            for name, explanation in record.explanations.items():
                if explanation.reverses_test:
                    assert explanation.size >= moche_size, name

    def test_conciseness_table(self, smoke_records):
        results = run_conciseness(smoke_records)
        for per_method in results.values():
            assert per_method["moche"] == pytest.approx(1.0)
        table = format_ise_table(results)
        assert "Figure 2" in table and "moche" in table

    def test_effectiveness_table(self, smoke_records):
        results = run_effectiveness(smoke_records)
        for per_method in results.values():
            for value in per_method.values():
                assert value >= 0 or np.isnan(value)
        assert "Figure 3" in format_rmse_table(results)

    def test_contrastivity_table(self, smoke_records):
        results = run_contrastivity(smoke_records)
        for per_method in results.values():
            assert per_method["moche"] == 1.0
        assert "Table 2" in format_reverse_factor_table(results)


class TestRuntimeExperiments:
    def test_runtime_timeseries_measurements(self, smoke_config):
        methods = build_methods(smoke_config, include=("moche", "greedy"), include_ablation=True)
        measurements = run_runtime_timeseries(smoke_config, methods=methods, family="ART")
        assert measurements
        names = {m.method for m in measurements}
        assert names == {"moche", "greedy", "moche_ns"}
        assert all(m.seconds >= 0 for m in measurements)
        assert "size" in format_runtime_table(measurements, title="Figure 5a")

    def test_runtime_synthetic_measurements(self, smoke_config):
        measurements = run_runtime_synthetic(smoke_config)
        sizes = {m.size for m in measurements}
        assert sizes == set(smoke_config.synthetic_sizes)
        assert {m.method for m in measurements} == {"moche", "greedy", "moche_ns"}


class TestLowerBoundStudy:
    def test_summaries_per_window_size(self, smoke_config, smoke_cases):
        summaries = run_lower_bound_study(smoke_config, cases=smoke_cases)
        assert summaries
        for summary in summaries.values():
            assert summary.minimum >= 0
            assert summary.maximum >= summary.minimum
        assert "Figure 6" in format_estimation_error_table(summaries)


class TestCaseStudy:
    def test_case_study_results(self):
        result = run_case_study(
            alpha=0.05, seed=2020, reference_size=400, test_size=600
        )
        assert result.population_explanation.reverses_test
        assert result.age_explanation.reverses_test
        # Both most comprehensible explanations have the same (minimum) size.
        assert result.population_explanation.size == result.age_explanation.size
        # The population-preference explanation draws from FHA only.
        ha_histogram = result.ha_histograms()["I_p"]
        assert ha_histogram["FHA"] == result.population_explanation.size
        # Age-preference explanation is skewed to seniors compared with I_p.
        age_i_a = result.preference_histograms()["I_a"]
        age_i_p = result.preference_histograms()["I_p"]

        def mean_age(hist):
            return np.average(np.arange(1, 11), weights=np.maximum(hist, 1e-9))

        assert mean_age(age_i_a) >= mean_age(age_i_p)
        report = format_case_study(result)
        assert "Figure 1b" in report and "Figure 4d" in report

    def test_case_study_rmse_table(self):
        result = run_case_study(alpha=0.05, seed=1, reference_size=300, test_size=500)
        rmse = result.rmse_table()
        assert set(rmse) >= {"moche", "greedy", "d3"}
        assert all(value >= 0 for value in rmse.values())

    def test_ecdf_after_removal_is_monotone(self):
        result = run_case_study(alpha=0.05, seed=2, reference_size=300, test_size=500,
                                include_baselines=False)
        grid, ecdf = result.ecdf_after_removal("moche")
        assert grid.size == 10
        assert np.all(np.diff(ecdf) >= -1e-12)
        assert ecdf[-1] == pytest.approx(1.0)


class TestDatasetSummary:
    def test_statistics_cover_all_families(self):
        config = ExperimentConfig(
            window_sizes=(100,), series_per_family=1, length_scale=0.2, seed=3
        )
        statistics = dataset_statistics(config)
        assert set(statistics) == {"AWS", "AD", "TRF", "TWT", "KC", "ART"}
        assert "Table 1" in format_dataset_statistics(statistics)


class TestReporting:
    def test_format_table_alignment_and_title(self):
        table = format_table(["a", "bb"], [[1, 2.5], ["xyz", 3.25]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "2.5000" in table
        assert "xyz" in table

    def test_format_table_without_title(self):
        table = format_table(["col"], [[1]])
        assert table.splitlines()[0].startswith("col")
