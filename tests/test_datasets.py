"""Tests for the dataset generators (repro.datasets)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ks import ks_test
from repro.datasets.covid import (
    AGE_GROUPS,
    HEALTH_AUTHORITIES,
    CovidCase,
    generate_covid_like_dataset,
)
from repro.datasets.nab import NAB_FAMILIES, generate_family, generate_nab_like_corpus
from repro.datasets.sliding_window import failed_window_pairs, sliding_window_pairs
from repro.datasets.synthetic import contaminated_pair, drifting_series
from repro.exceptions import ValidationError


class TestCovidDataset:
    def test_default_sizes_match_paper(self):
        dataset = generate_covid_like_dataset(seed=0)
        assert len(dataset.reference_cases) == 2175
        assert len(dataset.test_cases) == 3375

    def test_fails_ks_test_at_005(self):
        dataset = generate_covid_like_dataset(seed=0)
        result = ks_test(dataset.reference_values, dataset.test_values, 0.05)
        assert result.rejected

    def test_values_are_valid_age_groups(self):
        dataset = generate_covid_like_dataset(seed=1, reference_size=100, test_size=150)
        for values in (dataset.reference_values, dataset.test_values):
            assert values.min() >= 1
            assert values.max() <= len(AGE_GROUPS)

    def test_injected_indices_are_fha_and_older(self):
        dataset = generate_covid_like_dataset(seed=2)
        injected = [dataset.test_cases[i] for i in dataset.injected_test_indices]
        assert all(case.health_authority == "FHA" for case in injected)
        injected_mean_age = np.mean([case.age_group for case in injected])
        overall_mean_age = dataset.reference_values.mean()
        assert injected_mean_age > overall_mean_age

    def test_preferences_are_permutations(self):
        dataset = generate_covid_like_dataset(seed=3, reference_size=200, test_size=300)
        assert len(dataset.population_preference(seed=0)) == 300
        assert len(dataset.age_preference(seed=0)) == 300

    def test_population_preference_ranks_fha_first(self):
        dataset = generate_covid_like_dataset(seed=4, reference_size=200, test_size=300)
        preference = dataset.population_preference(seed=0)
        top_cases = [dataset.test_cases[i] for i in preference.top(10)]
        assert all(case.health_authority == "FHA" for case in top_cases)

    def test_age_preference_ranks_seniors_first(self):
        dataset = generate_covid_like_dataset(seed=5, reference_size=200, test_size=300)
        preference = dataset.age_preference(seed=0)
        ages = [dataset.test_cases[i].age_group for i in preference.order]
        assert ages == sorted(ages, reverse=True)

    def test_histograms_sum_to_sizes(self):
        dataset = generate_covid_like_dataset(seed=6, reference_size=150, test_size=250)
        assert dataset.age_histogram("reference").sum() == 150
        assert dataset.age_histogram("test").sum() == 250
        assert sum(dataset.ha_histogram().values()) == 250

    def test_histogram_subset(self):
        dataset = generate_covid_like_dataset(seed=7, reference_size=100, test_size=100)
        assert dataset.age_histogram("test", indices=[0, 1, 2]).sum() == 3

    def test_reproducible(self):
        first = generate_covid_like_dataset(seed=8, reference_size=50, test_size=60)
        second = generate_covid_like_dataset(seed=8, reference_size=50, test_size=60)
        assert np.array_equal(first.test_values, second.test_values)

    def test_invalid_case_metadata_rejected(self):
        with pytest.raises(ValidationError):
            CovidCase(age_group=0, health_authority="FHA")
        with pytest.raises(ValidationError):
            CovidCase(age_group=3, health_authority="NOPE")

    def test_invalid_generator_arguments_rejected(self):
        with pytest.raises(ValidationError):
            generate_covid_like_dataset(reference_size=0)
        with pytest.raises(ValidationError):
            generate_covid_like_dataset(excess_fraction=1.5)

    def test_health_authorities_ordered_by_population(self):
        populations = list(HEALTH_AUTHORITIES.values())
        assert populations == sorted(populations, reverse=True)


class TestNabCorpus:
    def test_unknown_family_rejected(self):
        with pytest.raises(ValidationError):
            generate_family("NOPE")

    @pytest.mark.parametrize("family", sorted(NAB_FAMILIES))
    def test_family_counts_and_lengths_match_table1(self, family):
        count, (min_length, max_length), _ = NAB_FAMILIES[family]
        dataset = generate_family(family, seed=0)
        assert len(dataset) == count
        shortest, longest = dataset.lengths
        assert shortest >= min_length * 0.99
        assert longest <= max_length * 1.01

    def test_series_carry_anomaly_labels(self):
        dataset = generate_family("ART", seed=1)
        for series in dataset:
            assert 0.0 < series.anomaly_fraction < 1.0
            assert len(series) == series.labels.size

    def test_length_scale_shrinks_series(self):
        full = generate_family("AD", seed=2)
        scaled = generate_family("AD", seed=2, length_scale=0.3)
        assert max(len(s) for s in scaled) < max(len(s) for s in full)

    def test_series_count_override(self):
        dataset = generate_family("AWS", seed=3, series_count=2)
        assert len(dataset) == 2

    def test_corpus_contains_all_families(self):
        corpus = generate_nab_like_corpus(seed=4, length_scale=0.2, series_per_family=1)
        assert set(corpus) == set(NAB_FAMILIES)

    def test_generation_is_reproducible(self):
        first = generate_family("TRF", seed=5, series_count=1, length_scale=0.3)
        second = generate_family("TRF", seed=5, series_count=1, length_scale=0.3)
        assert np.array_equal(first.series[0].values, second.series[0].values)

    def test_invalid_length_scale_rejected(self):
        with pytest.raises(ValidationError):
            generate_family("AWS", length_scale=0.0)


class TestSlidingWindows:
    def test_pairs_are_adjacent_and_non_overlapping(self, rng):
        series = rng.normal(size=1000)
        pairs = list(sliding_window_pairs(series, window_size=100))
        assert len(pairs) == 9
        for pair in pairs:
            assert pair.reference.size == pair.test.size == 100
            assert np.array_equal(pair.reference, series[pair.start:pair.start + 100])
            assert np.array_equal(pair.test, series[pair.start + 100:pair.start + 200])

    def test_labels_carried_from_time_series(self):
        dataset = generate_family("ART", seed=6, series_count=1)
        series = dataset.series[0]
        pairs = list(sliding_window_pairs(series, window_size=200))
        assert any(pair.test_contains_anomaly for pair in pairs)

    def test_failed_pairs_all_fail(self):
        dataset = generate_family("ART", seed=7, series_count=1)
        failed = failed_window_pairs(dataset.series[0], window_size=200)
        assert failed
        assert all(pair.failed for pair in failed)

    def test_require_anomaly_filters(self):
        dataset = generate_family("KC", seed=8, series_count=1, length_scale=0.3)
        all_failed = failed_window_pairs(dataset.series[0], window_size=150)
        with_anomaly = failed_window_pairs(
            dataset.series[0], window_size=150, require_anomaly=True
        )
        assert len(with_anomaly) <= len(all_failed)
        assert all(pair.test_contains_anomaly for pair in with_anomaly)

    def test_too_short_series_yields_nothing(self, rng):
        assert list(sliding_window_pairs(rng.normal(size=50), window_size=100)) == []

    def test_invalid_window_rejected(self, rng):
        with pytest.raises(ValidationError):
            list(sliding_window_pairs(rng.normal(size=100), window_size=1))

    def test_custom_step(self, rng):
        series = rng.normal(size=600)
        dense = list(sliding_window_pairs(series, window_size=100, step=50))
        sparse = list(sliding_window_pairs(series, window_size=100))
        assert len(dense) > len(sparse)


class TestSyntheticWorkloads:
    def test_contaminated_pair_fails_ks_test(self):
        pair = contaminated_pair(size=2000, fraction=0.03, seed=0)
        assert ks_test(pair.reference, pair.test, 0.05).rejected
        assert pair.reference.size == pair.test.size == 2000

    def test_contamination_fraction_respected(self):
        pair = contaminated_pair(size=1000, fraction=0.05, seed=1)
        assert pair.contaminated_indices.size >= 0.05 * 1000
        assert pair.fraction >= 0.05

    def test_contaminated_values_in_range(self):
        pair = contaminated_pair(size=500, fraction=0.1, low=-7, high=7, seed=2)
        contaminated = pair.test[pair.contaminated_indices]
        assert contaminated.min() >= -7
        assert contaminated.max() <= 7

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValidationError):
            contaminated_pair(size=2)
        with pytest.raises(ValidationError):
            contaminated_pair(size=100, fraction=0.0)

    def test_drifting_series_labels(self):
        values, labels = drifting_series(length=500, drift_start=300, seed=3)
        assert values.size == labels.size == 500
        assert not labels[:300].any()
        assert labels[300:].all()
        assert values[300:].mean() > values[:300].mean() + 1.0

    def test_drifting_series_invalid_start_rejected(self):
        with pytest.raises(ValidationError):
            drifting_series(length=100, drift_start=100)
