"""Tests for the I/O helpers (repro.io)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.moche import explain_ks_failure
from repro.exceptions import ValidationError
from repro.io.export import (
    explanation_report,
    explanation_to_csv,
    explanation_to_dict,
    explanation_to_json,
    save_explanation,
)
from repro.io.loaders import load_sample, load_series_csv, load_window_pair


@pytest.fixture
def explanation(shifted_pair):
    reference, test = shifted_pair
    return explain_ks_failure(reference, test)


class TestLoaders:
    def test_load_plain_csv(self, tmp_path):
        path = tmp_path / "sample.csv"
        path.write_text("1.5\n2.5\n3.5\n")
        assert np.array_equal(load_sample(path), [1.5, 2.5, 3.5])

    def test_load_csv_with_header_and_column(self, tmp_path):
        path = tmp_path / "table.csv"
        path.write_text("timestamp,value\n1,10.0\n2,20.0\n3,30.0\n")
        assert np.array_equal(load_sample(path, column="value"), [10.0, 20.0, 30.0])

    def test_load_csv_header_without_column_uses_first(self, tmp_path):
        path = tmp_path / "table.csv"
        path.write_text("value,other\n10.0,1\n20.0,2\n")
        assert np.array_equal(load_sample(path), [10.0, 20.0])

    def test_load_csv_missing_column_rejected(self, tmp_path):
        path = tmp_path / "table.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ValidationError):
            load_sample(path, column="missing")

    def test_load_json_array(self, tmp_path):
        path = tmp_path / "sample.json"
        path.write_text("[1, 2, 3.5]")
        assert np.array_equal(load_sample(path), [1.0, 2.0, 3.5])

    def test_load_json_object(self, tmp_path):
        path = tmp_path / "sample.json"
        path.write_text(json.dumps({"values": [4, 5]}))
        assert np.array_equal(load_sample(path), [4.0, 5.0])

    def test_load_json_object_custom_key(self, tmp_path):
        path = tmp_path / "sample.json"
        path.write_text(json.dumps({"latency": [1, 2]}))
        assert np.array_equal(load_sample(path, column="latency"), [1.0, 2.0])

    def test_load_json_missing_key_rejected(self, tmp_path):
        path = tmp_path / "sample.json"
        path.write_text(json.dumps({"other": [1]}))
        with pytest.raises(ValidationError):
            load_sample(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ValidationError):
            load_sample(tmp_path / "nope.csv")

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValidationError):
            load_sample(path)

    def test_non_numeric_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("x\nhello\n")
        with pytest.raises(ValidationError):
            load_sample(path, column="x")

    def test_load_window_pair(self, tmp_path):
        ref_path = tmp_path / "ref.csv"
        test_path = tmp_path / "test.csv"
        ref_path.write_text("1\n2\n")
        test_path.write_text("3\n4\n")
        reference, test = load_window_pair(ref_path, test_path)
        assert np.array_equal(reference, [1.0, 2.0])
        assert np.array_equal(test, [3.0, 4.0])

    def test_load_series_alias(self, tmp_path):
        path = tmp_path / "series.csv"
        path.write_text("t,v\n0,1.0\n1,2.0\n")
        assert np.array_equal(load_series_csv(path, value_column="v"), [1.0, 2.0])


class TestExport:
    def test_dict_round_trips_through_json(self, explanation):
        payload = json.loads(explanation_to_json(explanation))
        assert payload == explanation_to_dict(explanation)
        assert payload["method"] == "moche"
        assert payload["size"] == explanation.size
        assert payload["reverses_test"] is True
        assert len(payload["indices"]) == explanation.size

    def test_csv_has_one_row_per_point(self, explanation):
        csv_text = explanation_to_csv(explanation)
        lines = csv_text.strip().splitlines()
        assert lines[0] == "index,value"
        assert len(lines) == explanation.size + 1

    def test_report_mentions_key_facts(self, explanation):
        report = explanation_report(explanation)
        assert "failed KS test" in report
        assert "explanation size" in report
        assert "passes" in report

    def test_save_json_csv_txt(self, explanation, tmp_path):
        json_path = save_explanation(explanation, tmp_path / "e.json")
        csv_path = save_explanation(explanation, tmp_path / "e.csv")
        txt_path = save_explanation(explanation, tmp_path / "e.txt")
        assert json.loads(json_path.read_text())["size"] == explanation.size
        assert csv_path.read_text().startswith("index,value")
        assert "Counterfactual explanation" in txt_path.read_text()

    def test_save_unknown_format_rejected(self, explanation, tmp_path):
        with pytest.raises(ValidationError):
            save_explanation(explanation, tmp_path / "e.xml")
