"""Tests for the framed wire transport and the shared-memory chunk rings.

Covers the :class:`~repro.cluster.shm.ChunkRing` allocator (fill, wrap,
out-of-order frees, fallback on exhaustion), property-based round-trip of
the frame codec (arbitrary dtypes/shapes encode → transport → decode
byte-identically, with payloads in shared memory, inline, or mixed),
framed-vs-legacy report parity, and crash safety: a SIGKILLed shard leaks
no ``/dev/shm`` segment, a corrupt frame entry surfaces as a
:class:`~repro.cluster.wire.WorkerFailure` instead of a hang, and lost
chunks still finalize their traces.
"""

from __future__ import annotations

import json
import os
import pickle
import signal
import time
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster.shm import RING_NAME_PREFIX, ChunkRing, PayloadRef, RingFull
from repro.cluster.wire import (
    FramedChunk,
    IngestChunk,
    IngestFrame,
    WorkerFailure,
    decode_frame,
    encode_frame,
)
from repro.datasets.synthetic import drifting_series
from repro.exceptions import ServiceBackendError, ValidationError
from repro.obs.trace import TraceContext
from repro.service import ExplanationService, StreamConfig

WINDOW = 150


def shm_ring_segments() -> list[str]:
    """Names of live repro ring segments on this host."""
    shm_dir = Path("/dev/shm")
    if not shm_dir.is_dir():  # pragma: no cover - non-Linux
        return []
    return sorted(p.name for p in shm_dir.glob(f"{RING_NAME_PREFIX}*"))


@pytest.fixture(scope="module")
def drifted_values() -> np.ndarray:
    values, _ = drifting_series(
        length=1200, drift_start=600, drift_magnitude=3.0, seed=5
    )
    return values


# ----------------------------------------------------------------------
# ChunkRing allocator
# ----------------------------------------------------------------------
class TestChunkRing:
    def test_write_read_round_trip_is_byte_identical(self):
        ring = ChunkRing.create(capacity=1 << 16)
        try:
            values = np.arange(300, dtype=np.float64).reshape(100, 3)
            ref = ring.write(values)
            out = ring.read(ref)
            assert out.dtype == values.dtype and out.shape == values.shape
            np.testing.assert_array_equal(out, values)
            # The copy must be private and writable: detectors retain
            # windows past the parent's recycling of the ring bytes.
            out[0, 0] = -1.0
            assert ring.read(ref)[0, 0] == 0.0
        finally:
            ring.destroy()

    def test_fill_free_reuse(self):
        ring = ChunkRing.create(capacity=1024)
        try:
            refs = [ring.write(np.zeros(32)) for _ in range(4)]  # 4 * 256 B
            with pytest.raises(RingFull):
                ring.write(np.zeros(32))
            assert ring.full_rejections == 1
            ring.free(refs[0].offset)
            with pytest.raises(RingFull):
                # Strict inequality: the head may never land exactly on the
                # tail of a non-empty ring, so a same-size wrap into the one
                # freed block is still refused (the caller falls back).
                ring.write(np.zeros(32))
            ring.free(refs[1].offset)
            again = ring.write(np.zeros(32))  # wraps below the tail
            assert again.offset == 0 and again.nbytes == 256
            assert ring.live_blocks() == 3
        finally:
            ring.destroy()

    def test_wraparound_preserves_contents(self):
        ring = ChunkRing.create(capacity=1024)
        try:
            payloads = {}
            refs = []
            for index in range(40):  # 40 * 200 B >> capacity: must recycle
                values = np.full(25, float(index))  # 200 B
                ref = ring.write(values)
                refs.append(ref)
                payloads[ref.offset] = values
                if len(refs) > 3:
                    old = refs.pop(0)
                    np.testing.assert_array_equal(
                        ring.read(old), payloads.pop(old.offset)
                    )
                    ring.free(old.offset)
            for ref in refs:
                np.testing.assert_array_equal(ring.read(ref), payloads[ref.offset])
        finally:
            ring.destroy()

    def test_out_of_order_frees_are_tolerated(self):
        ring = ChunkRing.create(capacity=1024)
        try:
            first, second, third = (ring.write(np.zeros(32)) for _ in range(3))
            ring.free(second.offset)  # middle first: tail cannot advance yet
            assert ring.live_blocks() == 2
            ring.free(first.offset)  # now both pop
            ring.free(third.offset)
            assert ring.live_blocks() == 0
            # An empty ring resets, so the full capacity is contiguous again.
            big = ring.write(np.zeros(100))  # 800 B
            assert big.offset == 0
        finally:
            ring.destroy()

    def test_unknown_and_stale_frees_are_ignored(self):
        ring = ChunkRing.create(capacity=1024)
        try:
            ref = ring.write(np.zeros(8))
            ring.free(12345)  # never allocated
            assert ring.live_blocks() == 1
            ring.free(ref.offset)
            ring.free(ref.offset)  # double free
            assert ring.live_blocks() == 0
        finally:
            ring.destroy()

    def test_zero_size_and_oversize_payloads(self):
        ring = ChunkRing.create(capacity=256)
        try:
            empty = ring.write(np.zeros(0))
            assert empty.nbytes == 0
            np.testing.assert_array_equal(ring.read(empty), np.zeros(0))
            with pytest.raises(RingFull):
                ring.write(np.zeros(1024))  # bigger than the whole ring
        finally:
            ring.destroy()

    def test_object_dtype_rejected(self):
        ring = ChunkRing.create(capacity=1024)
        try:
            with pytest.raises(ValueError):
                ring.write(np.array([object()], dtype=object))
        finally:
            ring.destroy()

    def test_read_rejects_corrupt_refs(self):
        ring = ChunkRing.create(capacity=1024)
        try:
            with pytest.raises(ValueError):
                ring.read(PayloadRef(offset=900, nbytes=800, dtype="<f8", shape=(100,)))
            with pytest.raises(ValueError):
                # dtype x shape disagrees with the byte count
                ring.read(PayloadRef(offset=0, nbytes=64, dtype="<f8", shape=(100,)))
        finally:
            ring.destroy()

    def test_destroy_unlinks_and_is_idempotent(self):
        ring = ChunkRing.create(capacity=1024)
        name = ring.name
        assert name in shm_ring_segments()
        ring.destroy()
        assert name not in shm_ring_segments()
        ring.destroy()  # second destroy is a no-op

    def test_attach_sees_parent_writes(self):
        ring = ChunkRing.create(capacity=4096)
        try:
            values = np.linspace(0.0, 1.0, 257)
            ref = ring.write(values)
            reader = ChunkRing.attach(ring.name, ring.capacity)
            try:
                np.testing.assert_array_equal(reader.read(ref), values)
            finally:
                reader.close()
        finally:
            ring.destroy()


# ----------------------------------------------------------------------
# Frame codec: property-based round trip
# ----------------------------------------------------------------------
DTYPES = ("<f8", "<f4", "<i8", "<i4", "<u2")

chunk_arrays = st.builds(
    lambda dtype, shape, fill: np.full(shape, fill, dtype=np.dtype(dtype)),
    st.sampled_from(DTYPES),
    st.one_of(
        st.integers(min_value=0, max_value=400).map(lambda n: (n,)),
        st.tuples(
            st.integers(min_value=0, max_value=40),
            st.integers(min_value=1, max_value=8),
        ),
    ),
    st.integers(min_value=0, max_value=1000),  # fits every sampled dtype
)

trace_contexts = st.one_of(
    st.none(),
    st.builds(
        TraceContext,
        trace_id=st.text("abcdef0123456789", min_size=8, max_size=8),
        parent_span_id=st.text("abcdef0123456789", min_size=8, max_size=8),
        sampled=st.booleans(),
    ),
)

chunk_batches = st.lists(
    st.tuples(
        chunk_arrays,
        st.one_of(st.none(), st.floats(min_value=0.0, max_value=1e6)),
        trace_contexts,
    ),
    min_size=1,
    max_size=12,
)

CODEC_SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def build_chunks(batch) -> list[IngestChunk]:
    return [
        IngestChunk(
            seq=index + 1,
            stream_id=f"stream-{index % 3}",
            values=values,
            enqueued_at=enqueued_at,
            trace=trace,
        )
        for index, (values, enqueued_at, trace) in enumerate(batch)
    ]


def assert_round_trip(chunks, decoded):
    assert len(decoded) == len(chunks)
    for chunk, out in zip(chunks, decoded):
        assert isinstance(out, IngestChunk), out
        assert out.seq == chunk.seq
        assert out.stream_id == chunk.stream_id
        assert out.enqueued_at == chunk.enqueued_at
        assert out.trace == chunk.trace
        assert out.values.dtype == chunk.values.dtype
        assert out.values.shape == chunk.values.shape
        assert out.values.tobytes() == chunk.values.tobytes()


class TestFrameCodec:
    @given(chunk_batches)
    @CODEC_SETTINGS
    def test_round_trip_through_shared_memory(self, batch):
        chunks = build_chunks(batch)
        ring = ChunkRing.create(capacity=4 * 1024 * 1024)
        try:
            frame = encode_frame(chunks, ring)
            # The frame is what actually crosses the process boundary:
            # pickle it, exactly like mp.Queue would.
            frame = pickle.loads(pickle.dumps(frame))
            assert all(chunk.payload is not None for chunk in frame.chunks)
            reader = ChunkRing.attach(ring.name, ring.capacity)
            try:
                assert_round_trip(chunks, decode_frame(frame, reader))
            finally:
                reader.close()
        finally:
            ring.destroy()

    @given(chunk_batches)
    @CODEC_SETTINGS
    def test_round_trip_without_a_ring_is_identical(self, batch):
        chunks = build_chunks(batch)
        frame = pickle.loads(pickle.dumps(encode_frame(chunks, None)))
        assert all(chunk.payload is None for chunk in frame.chunks)
        assert_round_trip(chunks, decode_frame(frame, None))

    @given(chunk_batches)
    @CODEC_SETTINGS
    def test_tiny_ring_degrades_to_inline_not_errors(self, batch):
        # A 64-byte ring forces most payloads down the inline fallback;
        # the decoded chunks must not care which path each one took.
        chunks = build_chunks(batch)
        ring = ChunkRing.create(capacity=64)
        try:
            frame = pickle.loads(pickle.dumps(encode_frame(chunks, ring)))
            reader = ChunkRing.attach(ring.name, ring.capacity)
            try:
                assert_round_trip(chunks, decode_frame(frame, reader))
            finally:
                reader.close()
        finally:
            ring.destroy()

    def test_huge_array_rides_inline(self):
        values = np.random.default_rng(0).normal(size=1_000_000)  # 8 MB > ring
        ring = ChunkRing.create(capacity=1024)
        try:
            chunks = [IngestChunk(seq=1, stream_id="s", values=values)]
            frame = encode_frame(chunks, ring)
            assert frame.chunks[0].payload is None
            assert_round_trip(chunks, decode_frame(frame, ring))
        finally:
            ring.destroy()

    def test_decode_isolates_corrupt_entries(self):
        ring = ChunkRing.create(capacity=4096)
        try:
            good = ring.write(np.arange(4, dtype=np.float64))
            frame = IngestFrame(
                chunks=(
                    FramedChunk(seq=1, stream_id="a", payload=good),
                    FramedChunk(
                        seq=2,
                        stream_id="b",
                        payload=PayloadRef(
                            offset=1 << 30, nbytes=800, dtype="<f8", shape=(100,)
                        ),
                    ),
                    FramedChunk(seq=3, stream_id="c"),  # no payload at all
                )
            )
            first, second, third = decode_frame(frame, ring, shard_id="shard-9")
            assert isinstance(first, IngestChunk)
            np.testing.assert_array_equal(first.values, np.arange(4.0))
            for failure, seq in ((second, 2), (third, 3)):
                assert isinstance(failure, WorkerFailure)
                assert failure.seq == seq
                assert failure.shard_id == "shard-9"
                assert failure.command == "IngestFrame"
        finally:
            ring.destroy()


# ----------------------------------------------------------------------
# Transport parity and knobs
# ----------------------------------------------------------------------
def replay_report(drifted_values, **service_kwargs):
    with ExplanationService(
        executor="process",
        default_config=StreamConfig(window_size=WINDOW),
        **service_kwargs,
    ) as service:
        for stream_id in ("a", "b", "c"):
            service.register(stream_id)
        for start in range(0, drifted_values.size, 200):
            piece = drifted_values[start:start + 200]
            for stream_id in ("a", "b", "c"):
                service.submit(stream_id, piece)
        service.drain()
        stats = service.executor.stats()
        return service.report(), stats


class TestTransportParity:
    def test_framed_and_legacy_reports_are_byte_identical(self, drifted_values):
        framed, framed_stats = replay_report(
            drifted_values, shards=2, transport="framed"
        )
        legacy, legacy_stats = replay_report(
            drifted_values, shards=2, transport="legacy"
        )
        assert json.dumps(framed.canonical_dict(), sort_keys=True) == json.dumps(
            legacy.canonical_dict(), sort_keys=True
        )
        assert framed.alarms_raised > 0
        assert framed_stats["transport"] == "framed"
        assert framed_stats["frames_sent"] >= 1
        assert framed_stats["framed_chunks"] == framed_stats["ingests"]
        assert framed_stats["payload_bytes_shm"] > 0
        assert legacy_stats["transport"] == "legacy"
        assert legacy_stats["frames_sent"] == 0
        assert legacy_stats["payload_bytes_shm"] == 0

    def test_frame_size_one_still_frames_correctly(self, drifted_values):
        report, stats = replay_report(
            drifted_values[:600], shards=1, transport="framed", frame_size=1
        )
        assert report.alarms_raised >= 0
        assert stats["frames_sent"] == stats["ingests"]

    def test_transport_validation(self):
        with pytest.raises(ValidationError):
            ExplanationService(executor="process", shards=1, transport="carrier-pigeon")
        with pytest.raises(ValidationError):
            ExplanationService(executor="process", shards=1, frame_size=0)


# ----------------------------------------------------------------------
# Crash safety: no leaks, no hangs, traces finalized
# ----------------------------------------------------------------------
class TestCrashSafety:
    def test_sigkill_mid_frame_leaks_no_shm_and_loses_chunks_attributably(
        self, drifted_values
    ):
        before = set(shm_ring_segments())
        with ExplanationService(
            executor="process",
            shards=2,
            tracing=True,
            trace_sample=1.0,
            default_config=StreamConfig(window_size=WINDOW),
        ) as service:
            service.register("a")
            service.register("b")
            executor = service.executor
            service.submit("b", drifted_values[:400])
            service.drain()
            during = set(shm_ring_segments()) - before
            assert len(during) == 2, "one ring per live shard"
            # Freeze a's shard so its next chunks sit unprocessed (in the
            # pending frame or its queue), then SIGKILL it mid-flight.
            shard = executor._shards[executor.shard_of("a")]
            os.kill(shard.process.pid, signal.SIGSTOP)
            service.submit("a", drifted_values[:300])
            service.submit("a", drifted_values[300:600])
            os.kill(shard.process.pid, signal.SIGKILL)
            deadline = time.monotonic() + 30
            while shard.process.is_alive() and time.monotonic() < deadline:
                time.sleep(0.01)
            # Drain must not hang on the dead shard's unacknowledged chunks.
            assert service.drain(timeout=60)
            tracer = service.tracer
            report = service.report()
        # Every ring this service created is gone: the respawned
        # generation's fresh ring and the killed generation's both.
        assert set(shm_ring_segments()) - before == set()
        assert report.batcher_stats["restarts"] >= 1
        assert report.batcher_stats["lost_chunks"] >= 1
        lost = [trace for trace in tracer.traces() if trace.status == "lost"]
        assert lost, "lost chunks must finalize their traces as lost"
        assert all(span.finished for trace in lost for span in trace.spans)

    def test_corrupt_frame_surfaces_as_worker_failure_not_hang(self):
        with ExplanationService(
            executor="process", shards=1, default_config=StreamConfig(window_size=WINDOW)
        ) as service:
            service.register("s")
            executor = service.executor
            shard = executor._shards[executor.shard_of("s")]
            # A frame whose payload descriptor lies outside the ring: the
            # worker must answer with a per-chunk WorkerFailure, not die or
            # go silent.
            bad = IngestFrame(
                chunks=(
                    FramedChunk(
                        seq=999_983,
                        stream_id="s",
                        payload=PayloadRef(
                            offset=1 << 40, nbytes=800, dtype="<f8", shape=(100,)
                        ),
                    ),
                )
            )
            with executor._lifecycle:
                executor._post(shard, bad)
            # A real chunk behind the bad frame keeps drain() waiting long
            # enough to observe the deferred failure.
            service.submit("s", np.zeros(10))
            with pytest.raises(ServiceBackendError, match="decode failed"):
                for _ in range(200):
                    service.drain(timeout=0.1)
            service.close(drain=False)

    def test_clean_close_unlinks_every_ring(self, drifted_values):
        before = set(shm_ring_segments())
        with ExplanationService(
            executor="process", shards=2, default_config=StreamConfig(window_size=WINDOW)
        ) as service:
            service.register("s")
            service.submit("s", drifted_values[:400])
            service.drain()
        assert set(shm_ring_segments()) - before == set()

    def test_resize_recycles_the_retired_shards_rings(self, drifted_values):
        before = set(shm_ring_segments())
        with ExplanationService(
            executor="process", shards=4, default_config=StreamConfig(window_size=WINDOW)
        ) as service:
            service.register("s")
            service.submit("s", drifted_values[:400])
            service.drain()
            assert len(set(shm_ring_segments()) - before) == 4
            service.executor.resize(2)
            service.submit("s", drifted_values[400:800])
            service.drain()
            assert len(set(shm_ring_segments()) - before) == 2
        assert set(shm_ring_segments()) - before == set()
