"""Tests for the observability layer (:mod:`repro.obs`) and its wiring.

Covers the metric primitives (exact histogram merge, pickling, the
disabled-registry contract), the Prometheus exposition round trip, the
HTTP exporter, TTL/size-aware cache lifecycle, stage-latency presence
parity across all three executors, the latency-driven autoscaling policy,
and the elapsed-time reset on warm restart.
"""

from __future__ import annotations

import asyncio
import pickle
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aio.server import AsyncIngestServer
from repro.aio.service import AsyncExplanationService
from repro.cluster.autoscale import Autoscaler, LatencyPolicy, QueueDepthPolicy
from repro.datasets.synthetic import drifting_series
from repro.exceptions import ValidationError
from repro.obs.exporter import start_metrics_server
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    STAGES,
    STAGE_METRIC,
    latency_summary,
    merge_metric_states,
    register_stage_histograms,
    stage_histogram,
)
from repro.obs.prometheus import parse_exposition, render_registry
from repro.service import ExplanationService, StreamConfig
from repro.service.cache import LRUCache, SharedCaches, merge_stats_dicts


@pytest.fixture
def drifted_values() -> np.ndarray:
    values, _ = drifting_series(length=1200, drift_start=600, drift_magnitude=3.0, seed=5)
    return values


# ----------------------------------------------------------------------
# Metric primitives
# ----------------------------------------------------------------------
observations = st.lists(
    st.floats(min_value=0.0, max_value=12.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=200,
)


class TestHistogramMerge:
    @settings(max_examples=60, deadline=None)
    @given(observations, st.integers(min_value=0, max_value=200))
    def test_merged_shards_equal_concatenated_samples(self, samples, cut):
        """Per-shard histograms merge *exactly* into the whole-run histogram."""
        cut = cut % (len(samples) + 1)
        whole = Histogram("h")
        for value in samples:
            whole.observe(value)
        shard_a, shard_b = Histogram("h"), Histogram("h")
        for value in samples[:cut]:
            shard_a.observe(value)
        for value in samples[cut:]:
            shard_b.observe(value)
        merged = Histogram("h")
        merged.merge_state(shard_a.state_dict())
        merged.merge_state(shard_b.state_dict())

        assert merged.bucket_counts() == whole.bucket_counts()
        assert merged.count == whole.count
        assert merged.sum == pytest.approx(whole.sum)
        for q in (0.5, 0.95, 0.99, 1.0):
            assert merged.quantile(q) == pytest.approx(whole.quantile(q))

    @settings(max_examples=60, deadline=None)
    @given(observations)
    def test_quantiles_are_monotone_and_bounded(self, samples):
        histogram = Histogram("h")
        for value in samples:
            histogram.observe(value)
        p50, p95, p99 = (histogram.quantile(q) for q in (0.5, 0.95, 0.99))
        assert 0.0 <= p50 <= p95 <= p99 <= DEFAULT_LATENCY_BUCKETS[-1]

    def test_merge_refuses_different_bounds(self):
        ours = Histogram("h", buckets=(0.1, 1.0))
        theirs = Histogram("h", buckets=(0.5, 5.0))
        theirs.observe(0.3)
        with pytest.raises(ValueError, match="bucket bounds differ"):
            ours.merge_state(theirs.state_dict())

    def test_empty_histogram_has_no_quantiles(self):
        assert Histogram("h").quantile(0.95) is None
        assert Histogram("h").summary()["count"] == 0


class TestRegistry:
    def test_disabled_registry_hands_out_none(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter("c") is None
        assert registry.gauge("g") is None
        assert registry.histogram("h") is None
        assert stage_histogram(None, "detect") is None
        assert registry.state_dict() == {}
        assert latency_summary(None) == {}

    def test_same_name_and_labels_return_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("c", {"x": "1"})
        b = registry.counter("c", {"x": "1"})
        c = registry.counter("c", {"x": "2"})
        assert a is b
        assert a is not c

    def test_state_round_trip_through_merge(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc(3)
        registry.gauge("depth", {"shard": "s0"}).set(7.5)
        stage_histogram(registry, "detect", shard="s0").observe(0.02)
        rebuilt = merge_metric_states([registry.state_dict()])
        assert rebuilt.state_dict() == registry.state_dict()

    def test_registry_pickles_with_state(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc(5)
        stage_histogram(registry, "explain").observe(0.4)
        clone = pickle.loads(pickle.dumps(registry))
        assert clone.state_dict() == registry.state_dict()
        # Rebuilt locks still work.
        clone.counter("hits").inc()
        assert clone.counter("hits").value == 6

    def test_latency_summary_folds_per_shard_series(self):
        registry = MetricsRegistry()
        stage_histogram(registry, "explain", shard="s0").observe(0.010)
        stage_histogram(registry, "explain", shard="s1").observe(0.010)
        stage_histogram(registry, "explain").observe(0.010)
        summary = latency_summary(registry)
        assert summary["explain"]["count"] == 3

    def test_register_stage_histograms_precreates_all_stages(self):
        registry = MetricsRegistry()
        register_stage_histograms(registry)
        assert set(latency_summary(registry)) == set(STAGES)


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------
class TestPrometheus:
    def test_render_parse_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("repro_hits_total", {"cache": "explanations"}).inc(4)
        registry.gauge("repro_shards").set(3)
        stage_histogram(registry, "detect").observe(0.003)
        text = render_registry(registry)
        assert "# HELP" in text and "# TYPE" in text
        parsed = parse_exposition(text)
        assert parsed["repro_hits_total"][(("cache", "explanations"),)] == 4.0
        assert parsed["repro_shards"][()] == 3.0
        bucket = f"{STAGE_METRIC}_bucket"
        inf_rows = [
            value
            for labels, value in parsed[bucket].items()
            if ("le", "+Inf") in labels
        ]
        assert inf_rows == [1.0]
        assert parsed[f"{STAGE_METRIC}_count"][(("stage", "detect"),)] == 1.0

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 2.0):
            histogram.observe(value)
        parsed = parse_exposition(render_registry(registry))
        by_le = {dict(labels)["le"]: value for labels, value in parsed["h_bucket"].items()}
        assert by_le == {"0.1": 1.0, "1": 2.0, "+Inf": 3.0}

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_exposition("this is not an exposition{")


class TestExporter:
    def test_serves_metrics_over_http(self):
        registry = MetricsRegistry()
        registry.counter("repro_up").inc()

        async def scrape(path: str) -> tuple[str, str]:
            bound: asyncio.Future = asyncio.get_running_loop().create_future()
            server = await start_metrics_server(
                lambda: render_registry(registry),
                on_bound=lambda addr: bound.set_result(addr),
            )
            try:
                host, port = await asyncio.wait_for(bound, timeout=5)
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(f"GET {path} HTTP/1.1\r\nHost: x\r\n\r\n".encode())
                await writer.drain()
                payload = await asyncio.wait_for(reader.read(), timeout=5)
                writer.close()
                head, _, body = payload.decode().partition("\r\n\r\n")
                return head.split("\r\n")[0], body
            finally:
                server.close()
                await server.wait_closed()

        status, body = asyncio.run(scrape("/metrics"))
        assert status == "HTTP/1.1 200 OK"
        assert parse_exposition(body)["repro_up"][()] == 1.0
        status, _ = asyncio.run(scrape("/nope"))
        assert status == "HTTP/1.1 404 Not Found"


# ----------------------------------------------------------------------
# Cache lifecycle: TTL expiry and size-aware admission
# ----------------------------------------------------------------------
class TestCacheLifecycle:
    def test_entries_expire_after_ttl(self):
        clock = [0.0]
        cache = LRUCache(capacity=8, ttl=10.0, clock=lambda: clock[0])
        cache.put("k", "v")
        assert cache.get("k") == "v"
        clock[0] = 10.5
        assert cache.get("k") is None
        assert cache.stats.expired == 1
        assert cache.stats.misses == 1
        # The expired entry is gone, not resurrectable.
        clock[0] = 0.0
        assert cache.get("k") is None

    def test_snapshot_skips_stale_entries(self):
        clock = [0.0]
        cache = LRUCache(capacity=8, ttl=5.0, clock=lambda: clock[0])
        cache.put("old", 1)
        clock[0] = 4.0
        cache.put("fresh", 2)
        clock[0] = 6.0
        assert dict(cache.snapshot_items()) == {"fresh": 2}

    def test_oversized_entries_are_rejected(self):
        cache = LRUCache(capacity=8, max_entry_bytes=64)
        cache.put("small", b"x")
        cache.put("big", np.zeros(1024))
        assert cache.get("small") == b"x"
        assert cache.get("big") is None
        assert cache.stats.rejected == 1

    def test_lifecycle_counters_surface_in_stats_merge(self):
        clock = [0.0]
        cache = LRUCache(capacity=8, ttl=1.0, clock=lambda: clock[0])
        cache.put("k", "v")
        clock[0] = 2.0
        cache.get("k")
        merged = merge_stats_dicts({"c": cache.stats.to_dict()})
        assert merged["c"]["expired"] == 1
        assert "rejected" in merged["c"]

    def test_shared_caches_forward_lifecycle_knobs(self):
        clock = [0.0]
        caches = SharedCaches(ttl=5.0, max_entry_bytes=10_000, clock=lambda: clock[0])
        caches.explanations.put("k", "v")
        clock[0] = 6.0
        assert caches.explanations.get("k") is None
        assert caches.explanations.stats.expired == 1

    def test_invalid_lifecycle_knobs_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(capacity=8, ttl=0.0)
        with pytest.raises(ValueError):
            LRUCache(capacity=8, max_entry_bytes=0)


# ----------------------------------------------------------------------
# Service telemetry: presence parity across executors
# ----------------------------------------------------------------------
class TestServiceTelemetry:
    @pytest.mark.parametrize(
        "executor,kwargs",
        [
            ("inline", {}),
            ("thread", {"workers": 2}),
            ("process", {"shards": 2}),
        ],
    )
    def test_all_stages_present_under_every_executor(
        self, executor, kwargs, drifted_values
    ):
        with ExplanationService(
            executor=executor,
            metrics=True,
            default_config=StreamConfig(window_size=150),
            **kwargs,
        ) as service:
            service.register("a")
            for start in range(0, drifted_values.size, 200):
                service.submit("a", drifted_values[start:start + 200])
            report = service.report()
        assert report.alarms_raised > 0
        # Presence parity: every stage series exists on every executor,
        # even the ones that never observe a sample on this backend.
        assert set(report.latency) == set(STAGES)
        for summary in report.latency.values():
            assert {"count", "p50", "p95", "p99"} <= set(summary)
        for stage in ("ingest_enqueue", "detect", "explain"):
            assert report.latency[stage]["count"] > 0
            assert (
                report.latency[stage]["p50"]
                <= report.latency[stage]["p95"]
                <= report.latency[stage]["p99"]
            )
        if executor == "process":
            # Wire stages only exist across a process boundary; their
            # samples prove the cross-process stamp/merge path works.
            assert report.latency["wire_roundtrip"]["count"] > 0
            assert report.latency["batch_wait"]["count"] > 0
        assert "stage latency" in report.render(alarms=False)

    def test_metrics_disabled_by_default(self, drifted_values):
        with ExplanationService(
            default_config=StreamConfig(window_size=150)
        ) as service:
            service.register("a")
            service.submit("a", drifted_values[:400])
            report = service.report()
            assert report.latency == {}
            assert "disabled" in service.scrape_metrics()

    def test_scrape_exposes_stage_and_cache_series(self, drifted_values):
        with ExplanationService(
            metrics=True,
            workers=2,
            default_config=StreamConfig(window_size=150),
        ) as service:
            service.register("a")
            for start in range(0, drifted_values.size, 200):
                service.submit("a", drifted_values[start:start + 200])
            service.drain()
            parsed = parse_exposition(service.scrape_metrics())
        assert f"{STAGE_METRIC}_count" in parsed
        stages = {
            dict(labels).get("stage")
            for labels in parsed[f"{STAGE_METRIC}_count"]
        }
        assert stages == set(STAGES)
        assert "repro_observations_total" in parsed
        assert "repro_cache_hits_total" in parsed

    def test_restore_resets_elapsed_clock(self, drifted_values):
        with ExplanationService(
            default_config=StreamConfig(window_size=150)
        ) as service:
            service.register("a")
            service.submit("a", drifted_values[:600])
            snapshot = service.snapshot()
        with ExplanationService(
            default_config=StreamConfig(window_size=150)
        ) as restored:
            time.sleep(0.3)
            restored.restore(snapshot)
            report = restored.report()
        # The elapsed clock restarts at restore(): the idle stretch before
        # it must not deflate the restored service's throughput.
        assert report.elapsed_seconds < 0.25


# ----------------------------------------------------------------------
# Latency-driven autoscaling
# ----------------------------------------------------------------------
class _StubExecutor:
    def __init__(self, shards: int = 2) -> None:
        self.shards = shards
        self.resized: list[int] = []

    def stats(self) -> dict:
        return {"outstanding": 0, "capacity": 64, "shards": self.shards}

    def resize(self, target: int) -> None:
        self.resized.append(target)
        self.shards = target


class TestLatencyPolicy:
    def test_scales_up_where_queue_depth_holds(self):
        """A shallow queue with a slow p95 fires latency, not depth."""
        signals = {
            "latency_stage": "explain",
            "latency_samples": 50,
            "p95_latency": 2.0,
            "shard_skew": 1.0,
        }
        depth_executor = _StubExecutor()
        depth = Autoscaler(
            depth_executor,
            QueueDepthPolicy(min_shards=2, max_shards=4, cooldown_ticks=0),
        )
        assert depth.tick() is None  # outstanding=0: depth never fires up
        assert depth_executor.resized == []

        latency_executor = _StubExecutor()
        latency = Autoscaler(
            latency_executor,
            LatencyPolicy(min_shards=2, max_shards=4, target_p95=0.5),
            signals=lambda: signals,
        )
        decision = latency.tick()
        assert decision is not None and decision.target == 3
        assert latency_executor.resized == [3]
        assert "p95" in decision.reason
        assert "p95" in decision.render()

    def test_scales_up_on_shard_skew_alone(self):
        executor = _StubExecutor()
        scaler = Autoscaler(
            executor,
            LatencyPolicy(min_shards=1, max_shards=4, skew_threshold=2.0),
            signals=lambda: {"shard_skew": 3.0},
        )
        decision = scaler.tick()
        assert decision.target == 3
        assert "skew" in decision.reason

    def test_scales_down_when_fast_and_balanced(self):
        executor = _StubExecutor()
        scaler = Autoscaler(
            executor,
            LatencyPolicy(min_shards=1, target_p95=0.5, scale_down_p95=0.05),
            signals=lambda: {"p95_latency": 0.001, "latency_samples": 100},
        )
        assert scaler.tick().target == 1

    def test_holds_without_enough_samples(self):
        policy = LatencyPolicy(min_samples=10, target_p95=0.5)
        assert policy.decide_signals(
            {"shards": 1, "p95_latency": 9.0, "latency_samples": 3}
        ) is None

    def test_cooldown_suppresses_consecutive_steps(self):
        policy = LatencyPolicy(target_p95=0.5, cooldown_ticks=2)
        signals = {"shards": 1, "p95_latency": 1.0, "latency_samples": 100}
        assert policy.decide_signals(signals) == 2
        assert policy.decide_signals(signals) is None
        assert policy.decide_signals(signals) is None
        assert policy.decide_signals(signals) == 2

    def test_signal_provider_errors_fall_back_to_stats(self):
        executor = _StubExecutor()

        def boom() -> dict:
            raise RuntimeError("metrics hiccup")

        scaler = Autoscaler(
            executor,
            QueueDepthPolicy(min_shards=1, max_shards=4, cooldown_ticks=0),
            signals=boom,
        )
        decision = scaler.tick()  # depth 0 <= 0.15 -> scale down on raw stats
        assert decision is not None and decision.target == 1

    def test_validation(self):
        with pytest.raises(ValidationError):
            LatencyPolicy(min_shards=0)
        with pytest.raises(ValidationError):
            LatencyPolicy(target_p95=0.1, scale_down_p95=0.2)
        with pytest.raises(ValidationError):
            LatencyPolicy(skew_threshold=1.0)
        with pytest.raises(ValidationError):
            LatencyPolicy(min_samples=0)
        with pytest.raises(ValidationError):
            LatencyPolicy(cooldown_ticks=-1)

    def test_end_to_end_latency_scaling(self, drifted_values):
        """The service's own signals drive a resize the queue never would."""
        with ExplanationService(
            executor="process",
            shards=1,
            metrics=True,
            default_config=StreamConfig(window_size=150),
        ) as service:
            service.register("a")
            for start in range(0, drifted_values.size, 200):
                service.submit("a", drifted_values[start:start + 200])
            service.drain()
            signals = service.autoscale_signals()
            assert signals["latency_samples"] > 0
            # Target just below the measured p95: the very next tick fires.
            scaler = Autoscaler(
                service.executor,
                LatencyPolicy(
                    min_shards=1,
                    max_shards=2,
                    target_p95=max(signals["p95_latency"] / 2, 1e-6),
                    scale_down_p95=0.0,
                    min_samples=1,
                ),
                signals=service.autoscale_signals,
            )
            decision = scaler.tick()
            assert decision is not None and decision.target == 2
            assert service.executor.stats()["shards"] == 2


# ----------------------------------------------------------------------
# Wire ops
# ----------------------------------------------------------------------
class _NullSource:
    def stop(self) -> None:  # pragma: no cover - contract only
        pass

    async def run(self, handler) -> None:  # pragma: no cover - contract only
        pass


class TestWireOps:
    def test_metrics_and_stats_ops(self, drifted_values):
        async def run() -> tuple[dict, dict]:
            async with AsyncExplanationService(
                workers=2,
                metrics=True,
                default_config=StreamConfig(window_size=150),
            ) as aio:
                server = AsyncIngestServer(aio, _NullSource())
                reply = await server.handle({
                    "op": "ingest",
                    "stream": "a",
                    "values": drifted_values.tolist(),
                    "await": True,
                })
                assert reply["ok"] and reply["alarms"] > 0
                metrics = await server.handle({"op": "metrics"})
                stats = await server.handle({"op": "stats"})
                return metrics, stats

        metrics, stats = asyncio.run(run())
        assert metrics["ok"]
        parsed = parse_exposition(metrics["metrics"])
        assert f"{STAGE_METRIC}_count" in parsed
        assert stats["ok"]
        assert stats["stats"]["latency_stage"] == "explain"
        assert stats["stats"]["latency_samples"] > 0
        assert stats["stats"]["p95_latency"] > 0

    def test_unknown_op_still_errors(self):
        async def run() -> dict:
            async with AsyncExplanationService(workers=1) as aio:
                server = AsyncIngestServer(aio, _NullSource())
                return await server.handle({"op": "frobnicate"})

        assert "error" in asyncio.run(run())
