"""Tests for the six baseline explainers (repro.baselines)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    CornerSearchExplainer,
    D3Explainer,
    GraceExplainer,
    GreedyExplainer,
    Series2GraphExplainer,
    StompExplainer,
    greedy_prefix_until_pass,
)
from repro.core.cumulative import ExplanationProblem
from repro.core.moche import explain_ks_failure
from repro.core.preference import PreferenceList
from repro.exceptions import KSTestPassedError
from tests.conftest import make_failed_pair

ALL_BASELINES = [
    GreedyExplainer,
    CornerSearchExplainer,
    GraceExplainer,
    D3Explainer,
    StompExplainer,
    Series2GraphExplainer,
]


@pytest.fixture
def failed_pair(rng):
    return make_failed_pair(rng, reference_size=300, test_size=250, shift_fraction=0.15)


@pytest.fixture
def preference(failed_pair):
    _, test = failed_pair
    return PreferenceList.from_scores(test, descending=True, seed=0)


class TestGreedyPrefixHelper:
    def test_prefix_reverses_and_each_step_is_a_real_ks_test(self, failed_pair, preference):
        reference, test = failed_pair
        problem = ExplanationProblem(reference, test, 0.05)
        indices, reversed_test = greedy_prefix_until_pass(problem, preference.order)
        assert reversed_test
        assert problem.is_reversing_subset(indices)
        # One point fewer must not reverse (the helper stops at the first
        # passing prefix).
        if indices.size > 1:
            assert not problem.is_reversing_subset(indices[:-1])

    def test_prefix_is_a_preference_prefix(self, failed_pair, preference):
        reference, test = failed_pair
        problem = ExplanationProblem(reference, test, 0.05)
        indices, _ = greedy_prefix_until_pass(problem, preference.order)
        assert np.array_equal(indices, preference.order[: indices.size])

    def test_max_points_cap(self, failed_pair, preference):
        reference, test = failed_pair
        problem = ExplanationProblem(reference, test, 0.05)
        indices, reversed_test = greedy_prefix_until_pass(problem, preference.order, max_points=1)
        assert indices.size <= 1
        assert not reversed_test


class TestCommonBaselineBehaviour:
    @pytest.mark.parametrize("explainer_class", ALL_BASELINES)
    def test_explanations_are_valid_subsets(self, explainer_class, failed_pair, preference):
        reference, test = failed_pair
        explainer = explainer_class(alpha=0.05)
        explanation = explainer.explain(reference, test, preference)
        assert explanation.method == explainer.name
        assert explanation.indices.size == np.unique(explanation.indices).size
        assert explanation.indices.size < test.size
        assert np.all((0 <= explanation.indices) & (explanation.indices < test.size))
        assert np.array_equal(explanation.values, np.asarray(test)[explanation.indices])

    @pytest.mark.parametrize("explainer_class", ALL_BASELINES)
    def test_explanations_never_smaller_than_moche(self, explainer_class, failed_pair, preference):
        """MOCHE's size is provably minimum; no baseline can beat it."""
        reference, test = failed_pair
        moche_size = explain_ks_failure(reference, test, 0.05, preference).size
        explanation = explainer_class(alpha=0.05).explain(reference, test, preference)
        if explanation.reverses_test:
            assert explanation.size >= moche_size

    @pytest.mark.parametrize("explainer_class", ALL_BASELINES)
    def test_passed_test_raises(self, explainer_class, rng):
        sample = rng.normal(size=150)
        with pytest.raises(KSTestPassedError):
            explainer_class(alpha=0.05).explain(sample, sample.copy())


class TestGreedy:
    def test_greedy_prefix_matches_preference(self, failed_pair, preference):
        reference, test = failed_pair
        explanation = GreedyExplainer(alpha=0.05).explain(reference, test, preference)
        assert explanation.reverses_test
        assert np.array_equal(explanation.indices, preference.order[: explanation.size])

    def test_bad_preference_gives_larger_explanation(self, failed_pair):
        reference, test = failed_pair
        aligned = PreferenceList.from_scores(test, descending=True, seed=0)
        misaligned = PreferenceList.from_scores(test, descending=False, seed=0)
        good = GreedyExplainer(alpha=0.05).explain(reference, test, aligned)
        bad = GreedyExplainer(alpha=0.05).explain(reference, test, misaligned)
        assert bad.size >= good.size


class TestCornerSearch:
    def test_reverses_on_easy_instance(self, failed_pair, preference):
        reference, test = failed_pair
        explainer = CornerSearchExplainer(alpha=0.05, max_samples=3000, seed=0)
        explanation = explainer.explain(reference, test, preference)
        assert explanation.reverses_test

    def test_restricted_to_top_k(self, failed_pair, preference):
        reference, test = failed_pair
        explainer = CornerSearchExplainer(alpha=0.05, top_k=30, max_samples=500, seed=0)
        explanation = explainer.explain(reference, test, preference)
        allowed = set(preference.top(30).tolist())
        assert set(explanation.indices.tolist()) <= allowed

    def test_abort_reported_when_budget_too_small(self, rng):
        # A hard instance with a tiny budget and a misaligned preference
        # cannot be reversed; the result must be flagged as not converged.
        reference, test = make_failed_pair(rng, 400, 300, shift_fraction=0.3)
        misaligned = PreferenceList.from_scores(test, descending=False, seed=0)
        explainer = CornerSearchExplainer(alpha=0.05, top_k=10, max_samples=5, seed=0)
        explanation = explainer.explain(reference, test, misaligned)
        assert not explanation.converged
        assert not explanation.reverses_test

    def test_deterministic_given_seed(self, failed_pair, preference):
        reference, test = failed_pair
        first = CornerSearchExplainer(alpha=0.05, seed=3).explain(reference, test, preference)
        second = CornerSearchExplainer(alpha=0.05, seed=3).explain(reference, test, preference)
        assert np.array_equal(first.indices, second.indices)


class TestGrace:
    def test_reverses_on_easy_instance(self, failed_pair, preference):
        reference, test = failed_pair
        explainer = GraceExplainer(alpha=0.05, max_iterations=100, seed=0)
        explanation = explainer.explain(reference, test, preference)
        assert explanation.reverses_test

    def test_restricted_to_top_k(self, failed_pair, preference):
        reference, test = failed_pair
        explainer = GraceExplainer(alpha=0.05, top_k=40, max_iterations=60, seed=0)
        explanation = explainer.explain(reference, test, preference)
        allowed = set(preference.top(40).tolist())
        assert set(explanation.indices.tolist()) <= allowed

    def test_abort_flagged_when_budget_tiny(self, rng):
        reference, test = make_failed_pair(rng, 400, 300, shift_fraction=0.3)
        misaligned = PreferenceList.from_scores(test, descending=False, seed=0)
        explainer = GraceExplainer(alpha=0.05, top_k=10, max_iterations=1, seed=0)
        explanation = explainer.explain(reference, test, misaligned)
        assert not explanation.reverses_test


class TestD3:
    def test_continuous_mode_reverses(self, failed_pair, preference):
        reference, test = failed_pair
        explanation = D3Explainer(alpha=0.05).explain(reference, test, preference)
        assert explanation.reverses_test

    def test_discrete_mode_on_ordinal_data(self, rng):
        reference = rng.integers(1, 6, size=400).astype(float)
        test = np.concatenate(
            [rng.integers(1, 6, size=300), rng.integers(8, 11, size=100)]
        ).astype(float)
        explanation = D3Explainer(alpha=0.05, discrete=True).explain(reference, test)
        assert explanation.reverses_test
        # The discrete density ratio should point at the out-of-range values.
        assert explanation.values.min() >= 8

    def test_ignores_preference(self, failed_pair):
        reference, test = failed_pair
        first = D3Explainer(alpha=0.05).explain(
            reference, test, PreferenceList.identity(test.size)
        )
        second = D3Explainer(alpha=0.05).explain(
            reference, test, PreferenceList.random(test.size, seed=9)
        )
        assert np.array_equal(first.indices, second.indices)


class TestSubsequenceBaselines:
    @pytest.mark.parametrize("explainer_class", [StompExplainer, Series2GraphExplainer])
    def test_reverses_on_time_series_window(self, explainer_class, rng):
        # A window pair where the test window has an injected square anomaly.
        reference = rng.normal(size=300)
        test = rng.normal(size=300)
        test[200:260] += 4.0
        explanation = explainer_class(alpha=0.05).explain(reference, test)
        assert explanation.reverses_test

    @pytest.mark.parametrize("explainer_class", [StompExplainer, Series2GraphExplainer])
    def test_subsequence_length_is_5_percent(self, explainer_class):
        explainer = explainer_class(alpha=0.05)
        assert explainer.subsequence_length(1000) == 50
        assert explainer.subsequence_length(40) >= explainer.min_subsequence_length

    def test_small_window_falls_back_to_preference(self, rng):
        reference = rng.normal(size=12)
        test = np.concatenate([rng.normal(size=4), rng.uniform(4, 5, size=8)])
        explanation = StompExplainer(alpha=0.05).explain(reference, test)
        assert explanation.reverses_test
