"""Tests for preference lists (repro.core.preference)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.preference import PreferenceList, preference_from_metadata
from repro.exceptions import InvalidPreferenceError


class TestConstruction:
    def test_identity(self):
        preference = PreferenceList.identity(5)
        assert list(preference) == [0, 1, 2, 3, 4]
        assert len(preference) == 5

    def test_from_order(self):
        preference = PreferenceList.from_order([2, 0, 1])
        assert preference[0] == 2
        assert preference[2] == 1

    def test_rejects_non_permutation(self):
        with pytest.raises(InvalidPreferenceError):
            PreferenceList.from_order([0, 0, 1])

    def test_rejects_out_of_range(self):
        with pytest.raises(InvalidPreferenceError):
            PreferenceList.from_order([1, 2, 3])

    def test_rejects_empty(self):
        with pytest.raises(InvalidPreferenceError):
            PreferenceList.from_order([])

    def test_from_scores_descending(self):
        preference = PreferenceList.from_scores([0.1, 0.9, 0.5])
        assert preference[0] == 1
        assert preference[2] == 0

    def test_from_scores_ascending(self):
        preference = PreferenceList.from_scores([0.1, 0.9, 0.5], descending=False)
        assert preference[0] == 0
        assert preference[2] == 1

    def test_from_scores_ties_broken_randomly_but_reproducibly(self):
        scores = [1.0] * 6
        first = PreferenceList.from_scores(scores, seed=1)
        second = PreferenceList.from_scores(scores, seed=1)
        third = PreferenceList.from_scores(scores, seed=2)
        assert np.array_equal(first.order, second.order)
        assert not np.array_equal(first.order, third.order)

    def test_from_key(self):
        items = [{"age": 30}, {"age": 70}, {"age": 50}]
        preference = PreferenceList.from_key(items, key=lambda item: item["age"])
        assert preference[0] == 1

    def test_preference_from_metadata_wrapper(self):
        preference = preference_from_metadata([3, 1, 2], key=float)
        assert preference[0] == 0

    def test_random_is_permutation(self):
        preference = PreferenceList.random(20, seed=0)
        assert sorted(preference) == list(range(20))

    def test_random_reproducible(self):
        assert np.array_equal(
            PreferenceList.random(15, seed=5).order,
            PreferenceList.random(15, seed=5).order,
        )

    def test_order_is_read_only_copy_semantics(self):
        order = np.array([0, 1, 2])
        preference = PreferenceList.from_order(order)
        order[0] = 2  # mutating the input must not corrupt the preference
        assert preference[0] == 0 or sorted(preference) == [0, 1, 2]


class TestRanksAndTop:
    def test_ranks_inverse_of_order(self):
        preference = PreferenceList.from_order([2, 0, 3, 1])
        ranks = preference.ranks
        for rank, index in enumerate(preference.order):
            assert ranks[index] == rank

    def test_top(self):
        preference = PreferenceList.from_order([2, 0, 3, 1])
        assert np.array_equal(preference.top(2), [2, 0])

    def test_top_more_than_length(self):
        preference = PreferenceList.identity(3)
        assert preference.top(10).size == 3


class TestLexicographic:
    def test_key_is_sorted_ranks(self):
        preference = PreferenceList.from_order([3, 1, 0, 2])
        assert preference.lexicographic_key([0, 3]) == (0, 2)

    def test_more_comprehensible_prefers_better_first_element(self):
        preference = PreferenceList.identity(6)
        assert preference.more_comprehensible([0, 5], [1, 2])

    def test_more_comprehensible_breaks_ties_on_later_elements(self):
        preference = PreferenceList.identity(6)
        assert preference.more_comprehensible([0, 2], [0, 3])
        assert not preference.more_comprehensible([0, 3], [0, 2])

    def test_shorter_prefix_precedes(self):
        preference = PreferenceList.identity(6)
        assert preference.more_comprehensible([0], [0, 1])
