"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.datasets.synthetic import drifting_series
from tests.conftest import make_failed_pair


@pytest.fixture
def sample_files(tmp_path, rng):
    reference, test = make_failed_pair(rng, 300, 250, shift_fraction=0.15)
    ref_path = tmp_path / "reference.csv"
    test_path = tmp_path / "test.csv"
    ref_path.write_text("\n".join(str(v) for v in reference) + "\n")
    test_path.write_text("\n".join(str(v) for v in test) + "\n")
    return str(ref_path), str(test_path)


@pytest.fixture
def passing_files(tmp_path, rng):
    sample = rng.normal(size=200)
    ref_path = tmp_path / "ref_pass.csv"
    test_path = tmp_path / "test_pass.csv"
    ref_path.write_text("\n".join(str(v) for v in sample) + "\n")
    test_path.write_text("\n".join(str(v) for v in sample) + "\n")
    return str(ref_path), str(test_path)


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_explain_defaults(self):
        args = build_parser().parse_args(["explain", "r.csv", "t.csv"])
        assert args.method == "moche"
        assert args.alpha == 0.05
        assert args.preference == "spectral-residual"

    def test_unknown_method_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explain", "r.csv", "t.csv", "--method", "nope"])


class TestTestCommand:
    def test_failed_test_returns_one(self, sample_files, capsys):
        code = main(["test", *sample_files])
        assert code == 1
        assert "FAILED" in capsys.readouterr().out

    def test_passing_test_returns_zero(self, passing_files, capsys):
        code = main(["test", *passing_files])
        assert code == 0
        assert "passed" in capsys.readouterr().out


class TestExplainCommand:
    def test_explain_prints_report_and_writes_json(self, sample_files, tmp_path, capsys):
        output = tmp_path / "explanation.json"
        code = main([
            "explain", *sample_files,
            "--preference", "values-desc",
            "--output", str(output),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Counterfactual explanation (moche)" in out
        payload = json.loads(output.read_text())
        assert payload["reverses_test"] is True
        assert payload["method"] == "moche"

    def test_explain_with_baseline_method(self, sample_files, capsys):
        code = main(["explain", *sample_files, "--method", "greedy",
                     "--preference", "values-desc"])
        assert code == 0
        assert "greedy" in capsys.readouterr().out

    def test_explain_with_scores_file(self, sample_files, tmp_path, capsys):
        _, test_path = sample_files
        values = [float(line) for line in open(test_path).read().split()]
        scores_path = tmp_path / "scores.csv"
        scores_path.write_text("\n".join(str(v) for v in values) + "\n")
        code = main(["explain", *sample_files, "--preference-scores", str(scores_path)])
        assert code == 0

    def test_explain_passing_pair_reports_error(self, passing_files, capsys):
        code = main(["explain", *passing_files])
        assert code == 3
        assert "error:" in capsys.readouterr().err

    def test_explain_missing_file_reports_error(self, tmp_path, capsys):
        code = main(["explain", str(tmp_path / "a.csv"), str(tmp_path / "b.csv")])
        assert code == 3


class TestMonitorCommand:
    def test_monitor_prints_alarms(self, tmp_path, capsys):
        values, _ = drifting_series(length=1200, drift_start=600, drift_magnitude=3.0, seed=5)
        series_path = tmp_path / "series.csv"
        series_path.write_text("\n".join(str(v) for v in values) + "\n")
        code = main(["monitor", str(series_path), "--window", "150"])
        assert code == 0
        out = capsys.readouterr().out
        assert "drift alarm" in out
        assert "observations processed" in out


class TestServeCommand:
    @pytest.fixture
    def fleet_files(self, tmp_path):
        paths = []
        for index, seed in enumerate([5, 5, 9]):
            values, _ = drifting_series(
                length=1200, drift_start=600, drift_magnitude=3.0, seed=seed
            )
            path = tmp_path / f"sensor{index}.csv"
            path.write_text("\n".join(str(v) for v in values) + "\n")
            paths.append(str(path))
        return paths

    def test_serve_replays_fleet_and_reports(self, fleet_files, capsys):
        code = main(["serve", *fleet_files, "--window", "150", "--workers", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Explanation service report" in out
        assert "drift alarm at observation" in out
        assert "sensor0" in out and "sensor1" in out and "sensor2" in out

    def test_serve_writes_json_report(self, fleet_files, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        code = main([
            "serve", *fleet_files,
            "--window", "150",
            "--summary-only",
            "--output", str(report_path),
        ])
        assert code == 0
        payload = json.loads(report_path.read_text())
        assert payload["totals"]["streams"] == 3
        assert payload["totals"]["alarms_raised"] >= 3
        assert payload["totals"]["cache_hit_rate"] > 0

    def test_serve_with_incremental_detector(self, fleet_files, capsys):
        code = main([
            "serve", fleet_files[0],
            "--window", "150",
            "--detector", "incremental",
        ])
        assert code == 0
        assert "alarms raised" in capsys.readouterr().out

    def test_serve_duplicate_file_names_get_unique_streams(self, fleet_files, capsys):
        code = main(["serve", fleet_files[0], fleet_files[0],
                     "--window", "150", "--summary-only"])
        assert code == 0
        out = capsys.readouterr().out
        assert "sensor0" in out and "sensor0-2" in out

    def test_serve_on_process_shards(self, fleet_files, capsys):
        code = main([
            "serve", *fleet_files,
            "--window", "150",
            "--executor", "process",
            "--shards", "2",
            "--summary-only",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "alarms raised" in out
        assert "sensor0" in out and "sensor2" in out

    def test_serve_inline_executor(self, fleet_files, capsys):
        code = main(["serve", fleet_files[0], "--window", "150",
                     "--executor", "inline", "--summary-only"])
        assert code == 0
        assert "alarms raised" in capsys.readouterr().out

    def test_serve_rejects_unknown_executor(self, fleet_files):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", fleet_files[0], "--executor", "nope"])

    def test_serve_rejects_mismatched_backend_flags(self, fleet_files, capsys):
        # --shards without the process executor is a configuration mistake,
        # not something to ignore silently.
        code = main(["serve", fleet_files[0], "--shards", "4"])
        assert code == 3
        assert "--shards requires --executor process" in capsys.readouterr().err
        code = main(["serve", fleet_files[0], "--executor", "process",
                     "--workers", "8"])
        assert code == 3
        assert "--workers" in capsys.readouterr().err

    def test_serve_elastic_shards(self, fleet_files, capsys):
        code = main([
            "serve", *fleet_files,
            "--window", "150",
            "--executor", "process",
            "--min-shards", "1",
            "--max-shards", "2",
            "--summary-only",
        ])
        assert code == 0
        assert "alarms raised" in capsys.readouterr().out

    def test_serve_rejects_mismatched_elastic_flags(self, fleet_files, capsys):
        # Half an autoscaling band is a configuration mistake.
        code = main(["serve", fleet_files[0], "--executor", "process",
                     "--min-shards", "1"])
        assert code == 3
        assert "--min-shards and --max-shards" in capsys.readouterr().err
        # ... and the band only means something on the process executor.
        code = main(["serve", fleet_files[0],
                     "--min-shards", "1", "--max-shards", "2"])
        assert code == 3
        assert "--executor process" in capsys.readouterr().err
        # An explicit --shards outside the band is rejected, not clamped.
        code = main(["serve", fleet_files[0], "--executor", "process",
                     "--shards", "8", "--min-shards", "1", "--max-shards", "2"])
        assert code == 3
        assert "outside the autoscaling band" in capsys.readouterr().err

    def test_serve_missing_file_reports_error(self, tmp_path, capsys):
        code = main(["serve", str(tmp_path / "missing.csv")])
        assert code == 3
        assert "error:" in capsys.readouterr().err

    def test_serve_rejects_unknown_policy(self, fleet_files):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", fleet_files[0], "--policy", "nope"])

    def test_serve_requires_series_or_listen(self, capsys):
        code = main(["serve"])
        assert code == 3
        assert "--listen" in capsys.readouterr().err

    def test_serve_rejects_series_with_listen(self, fleet_files, capsys):
        code = main(["serve", fleet_files[0], "--listen", "127.0.0.1:0"])
        assert code == 3
        assert "--listen" in capsys.readouterr().err

    def test_serve_rejects_malformed_listen_address(self, capsys):
        code = main(["serve", "--listen", "no-port-here"])
        assert code == 3
        assert "HOST:PORT" in capsys.readouterr().err
        code = main(["serve", "--listen", "127.0.0.1:notaport"])
        assert code == 3
        assert "port" in capsys.readouterr().err

    def test_serve_rejects_mismatched_snapshot_cadence_flags(self, tmp_path, capsys):
        # Round-based cadence is a replay concept; listen mode is timed.
        code = main(["serve", "--listen", "127.0.0.1:0",
                     "--snapshot-dir", str(tmp_path), "--snapshot-every", "2"])
        assert code == 3
        assert "--snapshot-interval" in capsys.readouterr().err
        # ... and the timed cadence needs listen mode plus a directory.
        code = main(["serve", "--listen", "127.0.0.1:0",
                     "--snapshot-interval", "5"])
        assert code == 3
        assert "--snapshot-dir" in capsys.readouterr().err


class TestExperimentsCommand:
    def test_single_experiment_runs(self, capsys):
        code = main(["experiments", "--only", "table1"])
        assert code == 0
        assert "Table 1" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiments", "--only", "figure99"])
