"""Smoke tests that run every example script end to end."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=[s.stem for s in EXAMPLES])
def test_example_runs_cleanly(script):
    """Every example script exits with status 0 and prints something useful."""
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
        check=False,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "examples must print their results"


def test_expected_examples_present():
    names = {script.stem for script in EXAMPLES}
    assert {"quickstart", "covid_case_study", "drift_monitoring",
            "preference_sensitivity"} <= names
