"""Service snapshot / warm-restart tests (repro.service.snapshot).

The core property — established by hypothesis under all three executors —
is that splitting a replay at any chunk boundary with
``snapshot()`` → new service → ``restore()`` produces a canonical report
byte-identical to the uninterrupted replay.  On top of that: snapshot file
round trips (atomic pickle save/load), restore guards, warm cache
restoration, and the full ``repro serve --snapshot-dir`` warm restart
across a SIGKILL.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.service import ExplanationService, ServiceSnapshot, StreamConfig
from repro.service.results import canonical_report_dict
from repro.service.snapshot import SNAPSHOT_FILENAME

EXECUTORS = [
    ("inline", {}),
    ("thread", {"workers": 2}),
    ("process", {"shards": 2}),
]


def fleet(seed: int, streams: int = 3, segments: int = 3, segment: int = 250):
    """Seeded regime-switching feeds, one per stream."""
    out = {}
    for index in range(streams):
        rng = np.random.default_rng(seed * 100 + index)
        parts = [
            rng.normal(3.0 if part % 2 else 0.0, 1.0, segment)
            for part in range(segments)
        ]
        out[f"s{index}"] = np.concatenate(parts)
    return out


def replay(executor, kwargs, series, split=None, chunk=100, window=100):
    """Replay a fleet; optionally snapshot/close/restore at round ``split``.

    Returns ``(canonical_dict, resumed_report)`` where ``resumed_report``
    is the report object of the (possibly restored) service.
    """
    service = ExplanationService(
        executor=executor,
        default_config=StreamConfig(window_size=window),
        **kwargs,
    )
    for stream_id in sorted(series):
        service.register(stream_id)
    longest = max(values.size for values in series.values())
    rounds = range(0, longest, chunk)
    for round_index, start in enumerate(rounds):
        for stream_id in sorted(series):
            values = series[stream_id][start:start + chunk]
            if values.size:
                service.submit(stream_id, values)
        if split is not None and round_index == split:
            snapshot = service.snapshot()
            service.close()
            service = ExplanationService(
                executor=executor,
                default_config=StreamConfig(window_size=window),
                **kwargs,
            )
            service.restore(snapshot)
    report = service.report()
    service.close()
    return canonical_report_dict(report.to_dict()), report


class TestSnapshotRoundTripProperty:
    @pytest.mark.parametrize("executor,kwargs", EXECUTORS)
    @settings(
        max_examples=3,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(seed=st.integers(0, 50), split=st.integers(0, 6))
    def test_split_replay_is_byte_identical(self, executor, kwargs, seed, split):
        series = fleet(seed)
        base, _ = replay(executor, kwargs, series)
        resumed, _ = replay(executor, kwargs, series, split=split)
        assert base == resumed

    def test_round_trip_preserves_alarms_and_counters(self):
        series = fleet(5)
        base, _ = replay("inline", {}, series)
        resumed, report = replay("inline", {}, series, split=3)
        assert base == resumed
        assert sum(len(s["alarms"]) for s in base["streams"]) >= 3
        # The restored run's report covers the *whole* replay.
        assert report.observations == sum(v.size for v in fleet(5).values())

    def test_restored_caches_start_warm(self):
        series = fleet(7)
        _, report = replay("inline", {}, series, split=4)
        assert report.cache_hit_rate > 0.0


class TestSnapshotContents:
    def test_snapshot_captures_detector_state_and_accounting(self):
        series = fleet(3, streams=2)
        with ExplanationService(executor="inline") as service:
            for stream_id in sorted(series):
                service.register(stream_id, StreamConfig(window_size=100))
            for stream_id, values in series.items():
                service.submit(stream_id, values)
            snapshot = service.snapshot()
        assert snapshot.stream_ids() == ["s0", "s1"]
        for stream_id, values in series.items():
            assert snapshot.detector_states[stream_id]["count"] == values.size
            acct = snapshot.accounting[stream_id]
            assert acct["observations"] == values.size
            assert acct["alarms_raised"] == len(acct["alarms"])
        assert snapshot.resume_offsets() == {
            stream_id: values.size for stream_id, values in series.items()
        }
        assert any(items for items in snapshot.caches.values())

    def test_process_snapshot_collects_worker_state_over_the_wire(self):
        series = fleet(11, streams=4)
        with ExplanationService(executor="process", shards=2) as service:
            for stream_id in sorted(series):
                service.register(stream_id, StreamConfig(window_size=100))
            for stream_id, values in series.items():
                service.submit(stream_id, values)
            snapshot = service.snapshot()
        assert sorted(snapshot.detector_states) == sorted(series)
        for stream_id, values in series.items():
            assert snapshot.detector_states[stream_id]["count"] == values.size


class TestSnapshotFile:
    def test_save_load_round_trip(self, tmp_path):
        series = fleet(2, streams=2)
        with ExplanationService(executor="inline") as service:
            for stream_id in sorted(series):
                service.register(stream_id, StreamConfig(window_size=100))
            for stream_id, values in series.items():
                service.submit(stream_id, values)
            snapshot = service.snapshot()
        path = snapshot.save(tmp_path / "svc.pkl")
        loaded = ServiceSnapshot.load(path)
        assert loaded.configs == snapshot.configs
        assert loaded.detector_states == snapshot.detector_states
        assert loaded.resume_offsets() == snapshot.resume_offsets()

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ValidationError, match="no service snapshot"):
            ServiceSnapshot.load(tmp_path / "nope.pkl")

    def test_corrupt_file_raises(self, tmp_path):
        path = tmp_path / "torn.pkl"
        path.write_bytes(b"\x80\x05 definitely not a full pickle")
        with pytest.raises(ValidationError, match="corrupt"):
            ServiceSnapshot.load(path)

    def test_wrong_payload_type_raises(self, tmp_path):
        import pickle

        path = tmp_path / "other.pkl"
        path.write_bytes(pickle.dumps({"not": "a snapshot"}))
        with pytest.raises(ValidationError, match="does not hold"):
            ServiceSnapshot.load(path)


class TestRestoreGuards:
    def test_restore_requires_an_empty_service(self):
        with ExplanationService(executor="inline") as service:
            service.register("s", StreamConfig(window_size=100))
            snapshot = service.snapshot()
        with ExplanationService(executor="inline") as service:
            service.register("other", StreamConfig(window_size=100))
            with pytest.raises(ValidationError, match="no registered streams"):
                service.restore(snapshot)

    def test_snapshot_of_closed_service_raises(self):
        service = ExplanationService(executor="inline")
        service.close()
        with pytest.raises(ValidationError):
            service.snapshot()

    def test_restore_into_closed_service_raises(self):
        with ExplanationService(executor="inline") as service:
            snapshot = service.snapshot()
        service = ExplanationService(executor="inline")
        service.close()
        with pytest.raises(ValidationError):
            service.restore(snapshot)


class TestWarmRestartCLI:
    """Kill ``repro serve --snapshot-dir`` mid-replay; restart; same report."""

    @pytest.fixture
    def cli_env(self):
        src = str(Path(__file__).resolve().parent.parent / "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return env

    def _write_fleet(self, tmp_path):
        paths = []
        for stream_id, values in fleet(9, streams=3, segments=4, segment=300).items():
            path = tmp_path / f"{stream_id}.csv"
            path.write_text("\n".join(str(v) for v in values) + "\n")
            paths.append(str(path))
        return paths

    def test_kill_and_restart_is_byte_identical(self, tmp_path, cli_env):
        paths = self._write_fleet(tmp_path)
        base_args = [
            sys.executable, "-m", "repro.cli", "serve", *paths,
            "--window", "100", "--chunk", "60", "--summary-only",
        ]
        reference = tmp_path / "reference.json"
        subprocess.run(
            base_args + ["--output", str(reference)],
            env=cli_env, check=True, capture_output=True,
        )
        snapshot_dir = tmp_path / "snaps"
        resumed = tmp_path / "resumed.json"
        snapshot_args = base_args + [
            "--snapshot-dir", str(snapshot_dir), "--output", str(resumed),
        ]
        process = subprocess.Popen(
            snapshot_args, env=cli_env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        snapshot_file = snapshot_dir / SNAPSHOT_FILENAME
        deadline = time.time() + 60
        while time.time() < deadline and not snapshot_file.exists():
            time.sleep(0.01)
        assert snapshot_file.exists(), "no snapshot was ever written"
        process.send_signal(signal.SIGKILL)
        process.wait()
        completed = subprocess.run(
            snapshot_args, env=cli_env, check=True, capture_output=True, text=True,
        )
        assert "warm restart" in completed.stdout
        base = canonical_report_dict(json.loads(reference.read_text()))
        warm = canonical_report_dict(json.loads(resumed.read_text()))
        assert base == warm
        assert sum(len(s["alarms"]) for s in base["streams"]) >= 3

    def test_snapshot_dir_refuses_a_different_fleet(self, tmp_path, cli_env, capsys):
        from repro.cli import main

        paths = self._write_fleet(tmp_path)
        snapshot_dir = tmp_path / "snaps"
        code = main([
            "serve", *paths, "--window", "100", "--summary-only",
            "--snapshot-dir", str(snapshot_dir),
        ])
        assert code == 0
        capsys.readouterr()
        code = main([
            "serve", paths[0], "--window", "100", "--summary-only",
            "--snapshot-dir", str(snapshot_dir),
        ])
        assert code == 3
        assert "refusing to mix runs" in capsys.readouterr().err

    def test_snapshot_dir_refuses_different_configs(self, tmp_path, cli_env, capsys):
        from repro.cli import main

        paths = self._write_fleet(tmp_path)
        snapshot_dir = tmp_path / "snaps"
        code = main([
            "serve", *paths, "--window", "100", "--summary-only",
            "--snapshot-dir", str(snapshot_dir),
        ])
        assert code == 0
        capsys.readouterr()
        # Same fleet, different flags: the restore would silently serve the
        # snapshot's window-100 configs, so it must refuse instead.
        code = main([
            "serve", *paths, "--window", "120", "--summary-only",
            "--snapshot-dir", str(snapshot_dir),
        ])
        assert code == 3
        assert "different stream configs" in capsys.readouterr().err

    def test_snapshot_every_requires_snapshot_dir(self, tmp_path, capsys):
        from repro.cli import main

        paths = self._write_fleet(tmp_path)
        code = main(["serve", paths[0], "--snapshot-every", "2"])
        assert code == 3
        assert "--snapshot-every requires --snapshot-dir" in capsys.readouterr().err
