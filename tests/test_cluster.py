"""Tests for the :mod:`repro.cluster` execution runtime.

Covers the consistent-hash ring, registry snapshot round-tripping, parity
of the three executor backends on a seeded replay, shard fault handling,
backend error propagation through ``drain()``/``close()``, the 2-D
(Fasano-Franceschini) serving path and the vectorized construction scan.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cluster import HashRing, ShardRuntime
from repro.cluster.wire import CrashShard, RemoveStream
from repro.core.construction import construct_most_comprehensible
from repro.core.cumulative import ExplanationProblem
from repro.core.size_search import explanation_size
from repro.datasets.synthetic import drifting_series
from repro.exceptions import KSTestPassedError, ServiceBackendError, ValidationError
from repro.service import ExplanationService, StreamConfig, StreamRegistry


@pytest.fixture(scope="module")
def drifted_values() -> np.ndarray:
    values, _ = drifting_series(length=1200, drift_start=600, drift_magnitude=3.0, seed=5)
    return values


# ----------------------------------------------------------------------
# Consistent hashing
# ----------------------------------------------------------------------
class TestHashRing:
    def test_assignment_is_deterministic_across_instances(self):
        first = HashRing(["shard-0", "shard-1", "shard-2"])
        second = HashRing(["shard-0", "shard-1", "shard-2"])
        keys = [f"stream-{i}" for i in range(100)]
        assert [first.shard_for(k) for k in keys] == [second.shard_for(k) for k in keys]

    def test_keys_spread_over_every_shard(self):
        ring = HashRing([f"shard-{i}" for i in range(4)])
        groups = ring.partition(f"sensor-{i}" for i in range(40))
        assert set(groups) == set(ring.shards)
        assert all(groups.values()), "some shard received no streams"

    def test_removal_only_moves_the_dead_shards_keys(self):
        ring = HashRing([f"shard-{i}" for i in range(4)])
        keys = [f"stream-{i}" for i in range(200)]
        before = {k: ring.shard_for(k) for k in keys}
        ring.remove("shard-2")
        after = {k: ring.shard_for(k) for k in keys}
        for key in keys:
            if before[key] != "shard-2":
                assert after[key] == before[key]
            else:
                assert after[key] != "shard-2"

    def test_validation(self):
        with pytest.raises(ValidationError):
            HashRing([])
        with pytest.raises(ValidationError):
            HashRing(["a"], replicas=0)
        ring = HashRing(["a", "b"])
        with pytest.raises(ValidationError):
            ring.add("a")
        with pytest.raises(ValidationError):
            ring.remove("nope")
        ring.remove("b")
        with pytest.raises(ValidationError):
            ring.remove("a")


# ----------------------------------------------------------------------
# Snapshot round-tripping
# ----------------------------------------------------------------------
class TestSnapshots:
    @pytest.mark.parametrize(
        "config",
        [
            StreamConfig(),
            StreamConfig(window_size=64, alpha=0.01, detector="incremental", stride=5),
            StreamConfig(method="greedy", preference="values-desc", top_k=7, seed=3),
            StreamConfig(backend="ks2d", window_size=40),
        ],
    )
    def test_config_round_trips(self, config):
        payload = config.to_dict()
        assert json.dumps(payload)  # JSON-serialisable, not just picklable
        assert StreamConfig.from_dict(payload) == config

    def test_custom_callables_are_not_serialisable(self):
        config = StreamConfig(preference=lambda r, t: None)
        with pytest.raises(ValidationError):
            config.to_dict()

    def test_unknown_snapshot_fields_rejected(self):
        with pytest.raises(ValidationError):
            StreamConfig.from_dict({"window_size": 50, "wat": 1})

    def test_registry_snapshot_round_trips(self):
        registry = StreamRegistry()
        registry.register("a", StreamConfig(window_size=100))
        registry.register("b", StreamConfig(backend="ks2d", window_size=40))
        snapshot = registry.snapshot()
        restored = StreamRegistry.from_snapshot(snapshot)
        assert restored.ids() == ["a", "b"]
        for stream_id in registry.ids():
            assert restored.get(stream_id).config == registry.get(stream_id).config
        # The snapshot itself survives a JSON round trip unchanged.
        assert json.loads(json.dumps(snapshot)) == snapshot

    def test_snapshot_rejects_custom_callables(self):
        registry = StreamRegistry()
        registry.register("a", StreamConfig(preference=lambda r, t: None))
        with pytest.raises(ValidationError):
            registry.snapshot()


# ----------------------------------------------------------------------
# Executor parity
# ----------------------------------------------------------------------
def replay(executor: str, values: np.ndarray, **kwargs):
    with ExplanationService(
        executor=executor,
        default_config=StreamConfig(window_size=150),
        **kwargs,
    ) as service:
        for stream_id in ("a", "b", "c"):
            service.register(stream_id)
        for start in range(0, values.size, 100):
            chunk = values[start:start + 100]
            for stream_id in ("a", "b", "c"):
                service.submit(stream_id, chunk)
        return service.report()


class TestExecutorParity:
    def test_all_executors_produce_identical_reports(self, drifted_values):
        reports = {
            "inline": replay("inline", drifted_values),
            "thread": replay("thread", drifted_values, workers=2),
            "process": replay("process", drifted_values, shards=2),
        }
        assert reports["inline"].alarms_raised > 0
        canonical = {
            name: json.dumps(report.canonical_dict(), sort_keys=True)
            for name, report in reports.items()
        }
        assert canonical["thread"] == canonical["inline"]
        assert canonical["process"] == canonical["inline"]

    def test_inline_submit_reports_alarms_synchronously(self, drifted_values):
        with ExplanationService(
            executor="inline", default_config=StreamConfig(window_size=150)
        ) as service:
            service.register("s")
            total = service.submit("s", drifted_values)
            assert total == service.report().alarms_raised > 0

    def test_inline_rejects_alarm_work_after_close(self, drifted_values):
        service = ExplanationService(
            executor="inline", default_config=StreamConfig(window_size=150)
        )
        service.register("s")
        service.close()
        with pytest.raises(ValidationError):
            service.submit("s", drifted_values)


# ----------------------------------------------------------------------
# Process executor: faults and error propagation
# ----------------------------------------------------------------------
class TestProcessShardFaults:
    def test_crashed_shard_is_respawned_and_reregistered(self, drifted_values):
        with ExplanationService(
            executor="process", shards=2, default_config=StreamConfig(window_size=150)
        ) as service:
            service.register("a")
            service.register("b")
            executor = service.executor
            service.submit("b", drifted_values)
            service.drain()
            executor.crash_shard(executor.shard_of("a"))
            # The shard comes back with 'a' re-registered from the registry
            # snapshot (fresh detector state), so a full replay alarms.
            service.submit("a", drifted_values)
            report = service.report()
        stats = report.batcher_stats
        assert stats["restarts"] >= 1
        by_id = {stream.stream_id: stream for stream in report.streams}
        assert by_id["a"].alarms_raised >= 1
        assert by_id["a"].explained == by_id["a"].alarms_raised
        assert by_id["b"].alarms_raised >= 1

    def test_backpressure_bounds_in_flight_chunks(self, drifted_values):
        with ExplanationService(
            executor="process",
            shards=1,
            queue_capacity=2,
            default_config=StreamConfig(window_size=150),
        ) as service:
            service.register("s")
            # Many more chunks than the bound: submit must block-and-release
            # rather than deadlock or drop, and nothing may be lost.
            for start in range(0, drifted_values.size, 50):
                service.submit("s", drifted_values[start:start + 50])
            report = service.report()
        assert report.batcher_stats["capacity"] == 2
        assert report.batcher_stats["lost_chunks"] == 0
        stream = report.streams[0]
        assert stream.observations == drifted_values.size
        assert stream.alarms_raised >= 1

    def test_backpressure_survives_sibling_shard_death(self, drifted_values):
        with ExplanationService(
            executor="process",
            shards=2,
            queue_capacity=2,
            default_config=StreamConfig(window_size=150),
        ) as service:
            service.register("a")
            service.register("b")
            executor = service.executor
            assert executor.shard_of("a") != executor.shard_of("b")
            # Queue a crash ahead of a's chunks so they (usually) die
            # unacknowledged and pin the whole in-flight capacity.
            executor._shards[executor.shard_of("a")].commands.put(CrashShard())
            service.submit("a", drifted_values[:60])
            service.submit("a", drifted_values[60:120])
            # The live shard's submit must reclaim the pinned capacity by
            # reaping the dead sibling, not block forever.
            service.submit("b", drifted_values)
            assert service.drain(timeout=120)
            report = service.report()
        by_id = {stream.stream_id: stream for stream in report.streams}
        assert by_id["b"].alarms_raised >= 1

    def test_submit_after_close_fails_loudly(self):
        service = ExplanationService(
            executor="process", shards=1, default_config=StreamConfig(window_size=150)
        )
        service.register("s")
        service.close()
        # A closed backend must reject new work instead of queueing it for
        # nobody (which would make a later drain() hang forever).
        with pytest.raises(ValidationError):
            service.submit("s", np.zeros(10))

    def test_parent_keeps_no_idle_runtime_for_sharded_streams(self):
        with ExplanationService(executor="process", shards=1) as service:
            state = service.register("s", StreamConfig(window_size=150))
            assert state.detector is None and state.explainer is None
            assert state.tests_run == 0  # remote counter, not a detector

    def test_custom_callable_config_rejected_and_rolled_back(self):
        with ExplanationService(executor="process", shards=1) as service:
            with pytest.raises(ValidationError):
                service.register("s", StreamConfig(preference=lambda r, t: None))
            assert "s" not in service

    def test_worker_failure_propagates_through_drain(self):
        with ExplanationService(executor="process", shards=1) as service:
            service.register("s", StreamConfig(window_size=150))
            executor = service.executor
            # Forge a bad command: removing an unknown stream makes the
            # worker report a WorkerFailure, which drain() must surface.
            shard = executor._shards[executor.shard_of("s")]
            shard.commands.put(RemoveStream("not-registered"))
            service.submit("s", np.zeros(10))
            with pytest.raises(ServiceBackendError, match="reported"):
                for _ in range(200):
                    service.drain(timeout=0.1)
            service.close(drain=False)


# ----------------------------------------------------------------------
# 2-D (Fasano-Franceschini) serving
# ----------------------------------------------------------------------
def make_pair_stream(window: int, seed: int = 0) -> np.ndarray:
    """2*window stable points, then a half-contaminated window that alarms.

    Half of the final window is displaced far from the stable cloud — enough
    for the Fasano-Franceschini test to reject, small enough that the greedy
    explainer can reverse it well within its removal budget.  The outliers
    lead the window so the identity preference visits them first.
    """
    rng = np.random.default_rng(seed)
    stable = rng.normal(0.0, 1.0, size=(2 * window, 2))
    outliers = rng.normal(5.0, 0.5, size=(window // 2, 2))
    inliers = rng.normal(0.0, 1.0, size=(window - window // 2, 2))
    return np.vstack([stable, outliers, inliers])


class TestKS2DStreams:
    def test_defaults_resolve_per_backend(self):
        assert StreamConfig().method == "moche"
        assert StreamConfig().preference == "spectral-residual"
        config = StreamConfig(backend="ks2d")
        assert config.method == "greedy-ks2d"
        assert config.preference == "identity"
        with pytest.raises(ValidationError):
            StreamConfig(backend="ks2d", detector="incremental")
        with pytest.raises(ValidationError):
            StreamConfig(backend="ks2d", method="greedy")
        with pytest.raises(ValidationError):
            StreamConfig(backend="ks2d", preference="values-desc")
        # Explicit 1-D choices are rejected on a 2-D stream, never silently
        # swapped for the 2-D equivalents.
        with pytest.raises(ValidationError):
            StreamConfig(backend="ks2d", method="moche")
        with pytest.raises(ValidationError):
            StreamConfig(backend="ks2d", preference="spectral-residual")

    def test_with_overrides_re_resolves_defaults_on_backend_switch(self):
        switched = StreamConfig(window_size=60).with_overrides(backend="ks2d")
        assert switched.method == "greedy-ks2d"
        assert switched.preference == "identity"
        assert switched.window_size == 60
        back = switched.with_overrides(backend="ks1d")
        assert back.method == "moche"
        assert back.preference == "spectral-residual"
        # An explicitly chosen value does not silently follow the backend.
        with pytest.raises(ValidationError):
            StreamConfig(method="greedy").with_overrides(backend="ks2d")

    def test_pairs_are_served_and_explained(self):
        points = make_pair_stream(window=40)
        with ExplanationService(
            executor="inline", default_config=StreamConfig(backend="ks2d", window_size=40)
        ) as service:
            service.register("xy")
            service.submit("xy", points)
            report = service.report()
        stream = report.streams[0]
        assert stream.observations == points.shape[0]
        assert stream.alarms_raised >= 1
        assert stream.explained == stream.alarms_raised
        alarm = stream.alarms[0]
        assert alarm.result.rejected
        assert alarm.explanation.reverses_test
        # The report renders and serialises with 2-D results in it.
        assert "greedy-ks2d" in report.render()
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["streams"][0]["alarms"][0]["explanation"]["reverses_test"] is True

    def test_flat_chunks_are_paired_up(self):
        points = make_pair_stream(window=40)
        with ExplanationService(
            executor="inline", default_config=StreamConfig(backend="ks2d", window_size=40)
        ) as service:
            service.register("xy")
            service.submit("xy", points.ravel())  # flat [x0, y0, x1, y1, ...]
            flat_report = service.report()
        assert flat_report.streams[0].observations == points.shape[0]
        assert flat_report.streams[0].alarms_raised >= 1
        with pytest.raises(ValidationError):
            with ExplanationService(
                executor="inline",
                default_config=StreamConfig(backend="ks2d", window_size=40),
            ) as service:
                service.register("xy")
                service.submit("xy", np.zeros(5))  # odd number of floats

    def test_ks2d_parity_across_executors(self):
        points = make_pair_stream(window=40)

        def run(executor, **kwargs):
            with ExplanationService(
                executor=executor,
                default_config=StreamConfig(backend="ks2d", window_size=40),
                **kwargs,
            ) as service:
                service.register("xy")
                for start in range(0, points.shape[0], 32):
                    service.submit("xy", points[start:start + 32])
                return service.report().canonical_dict()

        inline = run("inline")
        process = run("process", shards=1)
        assert json.dumps(inline, sort_keys=True) == json.dumps(process, sort_keys=True)


# ----------------------------------------------------------------------
# ShardRuntime driven directly (no processes)
# ----------------------------------------------------------------------
class TestShardRuntime:
    def test_ingest_reports_alarms_and_deltas(self, drifted_values):
        runtime = ShardRuntime()
        runtime.register("s", StreamConfig(window_size=150).to_dict())
        reply = runtime.ingest("s", drifted_values, seq=7)
        assert reply.seq == 7
        assert reply.observations == drifted_values.size
        assert reply.alarms_raised_delta == len(reply.alarms) >= 1
        assert reply.tests_run_delta >= 1
        assert all(record.explanation is not None for record in reply.alarms)

    def test_registration_idempotent_for_identical_configs(self):
        runtime = ShardRuntime()
        runtime.register("s", StreamConfig())
        runtime.register("s", StreamConfig())  # replayed snapshot: no-op
        assert len(runtime) == 1
        with pytest.raises(ValidationError):
            runtime.register("s", StreamConfig(window_size=99))
        with pytest.raises(ValidationError):
            runtime.ingest("nope", [1.0])
        runtime.remove("s")
        with pytest.raises(ValidationError):
            runtime.remove("s")


# ----------------------------------------------------------------------
# Vectorized construction scan
# ----------------------------------------------------------------------
class TestVectorizedScan:
    def test_matches_checker_scan_on_random_problems(self):
        rng = np.random.default_rng(42)
        for trial in range(20):
            n = int(rng.integers(50, 200))
            m = int(rng.integers(50, 200))
            reference = rng.normal(size=n)
            test = np.concatenate(
                [rng.normal(size=m - m // 4), rng.uniform(2.5, 5.0, size=m // 4)]
            )
            try:
                problem = ExplanationProblem(reference, test, alpha=0.05)
            except KSTestPassedError:
                continue  # this draw happened not to drift; irrelevant here
            size = explanation_size(problem).size
            order = rng.permutation(m)
            fast = construct_most_comprehensible(problem, size, order, scan="vectorized")
            slow = construct_most_comprehensible(problem, size, order, scan="checker")
            assert np.array_equal(fast, slow), f"trial {trial} diverged"

    def test_unknown_scan_rejected(self):
        rng = np.random.default_rng(0)
        reference = rng.normal(size=100)
        test = rng.normal(3.0, 1.0, size=100)
        problem = ExplanationProblem(reference, test)
        with pytest.raises(ValidationError):
            construct_most_comprehensible(problem, 5, np.arange(100), scan="nope")
