"""Tests for the stream-backend plugin layer (repro.backends).

Covers the registry contract (unknown names list what *is* registered,
duplicate registration is refused), the built-in ks1d/ks2d backends being
ordinary plugins, renderer dispatch in :mod:`repro.io.export`, a custom
backend serving end to end through the service as a pure one-file
addition, and the stream-id attribution of registration-time validation
errors.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import (
    BackendRegistry,
    KS1DBackend,
    KS2DBackend,
    StreamBackend,
    backend_names,
    default_registry,
    get_backend,
    register_backend,
    renderer_for,
)
from repro.cluster.runtime import ShardRuntime
from repro.exceptions import ValidationError
from repro.io.export import explanation_report, explanation_to_dict
from repro.multidim.explain2d import KS2DExplanation
from repro.multidim.fasano_franceschini import KS2DResult
from repro.service import ExplanationService, StreamConfig, StreamRegistry


class TestRegistry:
    def test_builtins_are_registered(self):
        assert set(backend_names()) >= {"ks1d", "ks2d"}
        assert get_backend("ks1d") is get_backend("ks1d")  # singleton
        assert isinstance(get_backend("ks2d"), KS2DBackend)

    def test_unknown_backend_lists_registered_names(self):
        with pytest.raises(ValidationError) as err:
            get_backend("nope")
        message = str(err.value)
        assert "ks1d" in message and "ks2d" in message

    def test_unknown_backend_in_stream_config_lists_names(self):
        with pytest.raises(ValidationError) as err:
            StreamConfig(backend="nope")
        message = str(err.value)
        assert "ks1d" in message and "ks2d" in message

    def test_duplicate_name_refused_unless_replacing(self):
        registry = BackendRegistry()
        registry.register(KS1DBackend())
        with pytest.raises(ValidationError):
            registry.register(KS1DBackend())
        registry.register(KS1DBackend(), replace=True)
        assert registry.names() == ("ks1d",)

    def test_non_backend_objects_are_rejected(self):
        registry = BackendRegistry()
        with pytest.raises(ValidationError):
            registry.register(object())

    def test_nameless_backend_is_rejected(self):
        class Nameless(KS1DBackend):
            name = "?"

        with pytest.raises(ValidationError):
            BackendRegistry().register(Nameless())

    def test_unregister(self):
        registry = BackendRegistry()
        registry.register(KS2DBackend())
        assert registry.unregister("ks2d").name == "ks2d"
        assert registry.names() == ()
        with pytest.raises(ValidationError):
            registry.unregister("ks2d")

    def test_register_accepts_classes_and_decorates(self):
        registry = BackendRegistry()
        returned = registry.register(KS1DBackend)
        assert returned is KS1DBackend  # decorator-style pass-through
        assert "ks1d" in registry


class TestRendererDispatch:
    def test_ks2d_explanations_render_through_their_backend(self):
        result = KS2DResult(statistic=0.8, pvalue=0.001, alpha=0.05, n=40, m=40)
        explanation = KS2DExplanation(
            indices=np.array([1, 3]),
            points=np.array([[0.0, 1.0], [2.0, 3.0]]),
            result_before=result,
            result_after=KS2DResult(
                statistic=0.1, pvalue=0.9, alpha=0.05, n=40, m=38
            ),
            runtime_seconds=0.01,
        )
        assert renderer_for(explanation) is get_backend("ks2d")
        payload = explanation_to_dict(explanation)
        assert payload["method"] == "greedy-ks2d"
        assert payload["points"] == [[0.0, 1.0], [2.0, 3.0]]
        assert "greedy-ks2d" in explanation_report(explanation)

    def test_duck_typed_2d_explanations_render_through_ks2d(self):
        # A custom 2-D explainer object may return its own result class;
        # anything 2-D-shaped must not crash against the scalar renderer.
        class Custom2D:
            indices = np.array([0])
            points = np.array([[1.0, 2.0]])
            result_before = KS2DResult(
                statistic=0.7, pvalue=0.002, alpha=0.05, n=30, m=30
            )
            result_after = KS2DResult(
                statistic=0.1, pvalue=0.8, alpha=0.05, n=30, m=29
            )
            runtime_seconds = 0.0
            size = 1
            reverses_test = True

        explanation = Custom2D()
        assert renderer_for(explanation) is get_backend("ks2d")
        assert explanation_to_dict(explanation)["points"] == [[1.0, 2.0]]
        assert "greedy-ks2d" in explanation_report(explanation)

    def test_unclaimed_explanations_fall_back_to_ks1d(self, small_failed_problem, rng):
        from repro.core.moche import MOCHE
        from repro.core.preference import PreferenceList

        problem = small_failed_problem
        explanation = MOCHE(alpha=problem.alpha).explain(
            problem.reference, problem.test, PreferenceList.identity(problem.m)
        )
        assert renderer_for(explanation) is get_backend("ks1d")
        payload = explanation_to_dict(explanation)
        assert payload["method"] == explanation.method
        assert "Counterfactual explanation" in explanation_report(explanation)


@pytest.fixture
def doubled_backend():
    """A one-file custom backend: ks1d with observations scaled 2x.

    Scaling both windows by the same factor leaves the KS statistic
    untouched, so the custom backend raises exactly the alarms ks1d would
    — which makes it a clean end-to-end probe of the plugin seam.
    """

    class DoubledBackend(KS1DBackend):
        name = "doubled"

        def coerce_observations(self, observations):
            return super().coerce_observations(observations) * 2.0

    backend = DoubledBackend()
    register_backend(backend)
    yield backend
    default_registry().unregister("doubled")


class TestCustomBackend:
    def test_serves_end_to_end_without_serving_code_changes(self, doubled_backend, rng):
        values = np.concatenate(
            [rng.normal(0.0, 1.0, 180), rng.normal(3.0, 1.0, 120)]
        )
        with ExplanationService(executor="inline") as service:
            service.register("s", StreamConfig(window_size=60, backend="doubled"))
            service.submit("s", values)
            report = service.report()
        stream = report.streams[0]
        assert stream.observations == values.size
        assert stream.alarms_raised >= 1
        assert stream.explained == stream.alarms_raised
        # The doubled values flow all the way into the explanations.
        explained = report.streams[0].alarms[0].explanation
        assert np.all(np.abs(explained.values) >= np.abs(values).min() * 2.0 - 1e-9)

    def test_config_snapshot_round_trips_custom_backend_name(self, doubled_backend):
        config = StreamConfig(window_size=60, backend="doubled")
        clone = StreamConfig.from_dict(config.to_dict())
        assert clone == config
        assert clone.plugin is doubled_backend

    def test_defaults_resolve_through_the_plugin(self, doubled_backend):
        config = StreamConfig(backend="doubled")
        assert config.method == "moche"
        assert config.preference == "spectral-residual"


class TestStreamIdAttribution:
    """Registration-time validation errors must name the offending stream."""

    def test_service_register_names_stream_on_bad_override(self):
        with ExplanationService(executor="inline") as service:
            with pytest.raises(ValidationError, match="sensor-7"):
                service.register("sensor-7", method="nope")
            with pytest.raises(ValidationError, match="sensor-8"):
                service.register("sensor-8", backend="nope")

    def test_registry_from_snapshot_names_stream_on_bad_payload(self):
        snapshot = {"good": StreamConfig().to_dict(), "bad": {"method": "nope"}}
        with pytest.raises(ValidationError, match="'bad'"):
            StreamRegistry.from_snapshot(snapshot)

    def test_shard_runtime_register_names_stream_on_bad_config_dict(self):
        runtime = ShardRuntime()
        with pytest.raises(ValidationError, match="'worker-stream'"):
            runtime.register("worker-stream", {"preference": "nope"})

    def test_stream_id_appears_exactly_once(self):
        with ExplanationService(executor="inline") as service:
            with pytest.raises(ValidationError) as err:
                service.register("once", method="nope")
        assert str(err.value).count("'once'") == 1


class TestBackendProtocol:
    def test_ks1d_owns_both_detector_flavours(self):
        backend = get_backend("ks1d")
        assert backend.detectors == ("windowed", "incremental")
        windowed = backend.build_detector(StreamConfig(window_size=50))
        incremental = backend.build_detector(
            StreamConfig(window_size=50, detector="incremental")
        )
        assert type(windowed).__name__ == "KSDriftDetector"
        assert type(incremental).__name__ == "IncrementalKSDetector"

    def test_detector_state_pass_through(self, rng):
        backend = get_backend("ks1d")
        config = StreamConfig(window_size=30)
        detector = backend.build_detector(config)
        for value in rng.normal(size=75):
            detector.update(float(value))
        state = backend.detector_state(detector)
        clone = backend.build_detector(config)
        backend.restore_detector(clone, state)
        assert clone.observations_seen == detector.observations_seen
        assert np.array_equal(clone.test_window(), detector.test_window())

    def test_cache_keys_are_backend_qualified(self):
        ks1d, ks2d = get_backend("ks1d"), get_backend("ks2d")
        config_1d = StreamConfig(window_size=50)
        config_2d = StreamConfig(window_size=50, backend="ks2d")
        digest = b"x" * 16
        assert ks1d.explanation_cache_key(config_1d, digest, digest) != (
            ks2d.explanation_cache_key(config_2d, digest, digest)
        )
        assert ks1d.preference_cache_key(config_1d, digest, digest)[0] == "ks1d"

    def test_stream_backend_is_abstract(self):
        with pytest.raises(TypeError):
            StreamBackend()
