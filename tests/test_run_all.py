"""Tests for the experiment orchestrator (repro.experiments.run_all)."""

from __future__ import annotations

import pytest

from repro.exceptions import ValidationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.run_all import EXPERIMENT_IDS, render_all, run_all_experiments


@pytest.fixture(scope="module")
def tiny_config():
    return ExperimentConfig(
        window_sizes=(100,),
        cases_per_dataset=1,
        series_per_family=1,
        length_scale=0.1,
        synthetic_sizes=(300,),
        seed=5,
    )


class TestRunAll:
    def test_unknown_id_rejected(self, tiny_config):
        with pytest.raises(ValidationError):
            run_all_experiments(tiny_config, only=("figure42",))

    def test_single_experiment(self, tiny_config):
        tables = run_all_experiments(tiny_config, only=("table1",))
        assert set(tables) == {"table1"}
        assert "Table 1" in tables["table1"]

    def test_metric_experiments_share_one_evaluation(self, tiny_config):
        messages: list[str] = []
        tables = run_all_experiments(
            tiny_config, only=("figure2", "table2", "figure3"), progress=messages.append
        )
        assert set(tables) == {"figure2", "table2", "figure3"}
        # The expensive method-evaluation step runs exactly once.
        runs = [m for m in messages if m.startswith("Running")]
        assert len(runs) == 1

    def test_runtime_experiments(self, tiny_config):
        tables = run_all_experiments(tiny_config, only=("figure5b",))
        assert "Figure 5b" in tables["figure5b"]

    def test_render_all_orders_by_paper(self, tiny_config):
        tables = run_all_experiments(tiny_config, only=("figure5b", "table1"))
        rendered = render_all(tables)
        assert rendered.index("Table 1") < rendered.index("Figure 5b")

    def test_experiment_ids_cover_paper_artifacts(self):
        assert set(EXPERIMENT_IDS) == {
            "table1", "figure1", "figure2", "table2", "figure3",
            "figure4", "figure5a", "figure5b", "figure6",
        }
