"""Tests for cumulative vectors and ExplanationProblem (repro.core.cumulative)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import cumulative
from repro.core.cumulative import ExplanationProblem
from repro.exceptions import KSTestPassedError, ValidationError


class TestBaseVector:
    def test_base_vector_is_sorted_unique_union(self):
        base = cumulative.base_vector([3.0, 1.0, 1.0], [2.0, 3.0, 5.0])
        assert np.array_equal(base, [1.0, 2.0, 3.0, 5.0])

    def test_paper_example_base_vector(self, paper_example):
        reference, test, _ = paper_example
        base = cumulative.base_vector(reference, test)
        assert np.array_equal(base, [12.0, 13.0, 14.0, 20.0])


class TestCumulativeVector:
    def test_paper_example_subset(self, paper_example):
        reference, test, _ = paper_example
        base = cumulative.base_vector(reference, test)
        # S = {13, 13}: Example 3 gives C_S = <0, 0, 2, 2, 2>; our arrays drop
        # the leading constant 0.
        vector = cumulative.cumulative_vector(base, [13.0, 13.0])
        assert np.array_equal(vector, [0, 2, 2, 2])

    def test_full_test_set_cumulative(self, paper_example):
        reference, test, _ = paper_example
        base = cumulative.base_vector(reference, test)
        vector = cumulative.cumulative_vector(base, test)
        assert vector[-1] == test.size
        assert np.all(np.diff(vector) >= 0)

    def test_empty_subset_is_all_zeros(self, paper_example):
        reference, test, _ = paper_example
        base = cumulative.base_vector(reference, test)
        assert np.array_equal(cumulative.cumulative_vector(base, []), np.zeros(4))

    def test_values_outside_base_rejected(self):
        with pytest.raises(ValidationError):
            cumulative.cumulative_vector(np.array([1.0, 2.0]), [5.0])

    def test_counts_roundtrip(self, paper_example):
        reference, test, _ = paper_example
        base = cumulative.base_vector(reference, test)
        vector = cumulative.cumulative_vector(base, test)
        counts = cumulative.counts_from_cumulative(vector)
        rebuilt = cumulative.subset_from_cumulative(base, vector)
        assert counts.sum() == test.size
        assert np.array_equal(np.sort(rebuilt), np.sort(test))

    def test_decreasing_cumulative_vector_rejected(self):
        with pytest.raises(ValidationError):
            cumulative.subset_from_cumulative(np.array([1.0, 2.0]), np.array([2, 1]))


class TestExplanationProblem:
    def test_requires_failed_test_by_default(self, rng):
        sample = rng.normal(size=200)
        with pytest.raises(KSTestPassedError):
            ExplanationProblem(sample, sample, alpha=0.05)

    def test_passed_test_allowed_when_not_required(self, rng):
        sample = rng.normal(size=100)
        problem = ExplanationProblem(sample, sample.copy(), 0.05, require_failed=False)
        assert problem.initial_result.passed

    def test_sizes_and_base(self, paper_example):
        reference, test, alpha = paper_example
        problem = ExplanationProblem(reference, test, alpha)
        assert (problem.n, problem.m, problem.q) == (8, 4, 4)
        assert np.array_equal(problem.base, [12.0, 13.0, 14.0, 20.0])

    def test_cumulative_vectors(self, paper_example):
        reference, test, alpha = paper_example
        problem = ExplanationProblem(reference, test, alpha)
        assert np.array_equal(problem.cum_reference, [0, 0, 4, 8])
        assert np.array_equal(problem.cum_test, [1, 3, 3, 4])

    def test_test_base_indices(self, paper_example):
        reference, test, alpha = paper_example
        problem = ExplanationProblem(reference, test, alpha)
        # T = [13, 13, 12, 20] maps to base positions [1, 1, 0, 3].
        assert np.array_equal(problem.test_base_indices, [1, 1, 0, 3])

    def test_cumulative_of_indices_matches_direct_computation(self, small_failed_problem):
        problem = small_failed_problem
        indices = np.array([0, 3, 7])
        expected = cumulative.cumulative_vector(problem.base, problem.test[indices])
        assert np.array_equal(problem.cumulative_of_indices(indices), expected)

    def test_cumulative_of_empty_indices(self, small_failed_problem):
        vector = small_failed_problem.cumulative_of_indices(np.array([], dtype=int))
        assert np.array_equal(vector, np.zeros(small_failed_problem.q))

    def test_remove_indices(self, paper_example):
        reference, test, alpha = paper_example
        problem = ExplanationProblem(reference, test, alpha)
        remaining = problem.remove_indices(np.array([1, 2]))
        assert np.array_equal(np.sort(remaining), [13.0, 20.0])

    def test_out_of_range_indices_rejected(self, small_failed_problem):
        with pytest.raises(ValidationError):
            small_failed_problem.remove_indices(np.array([100]))

    def test_duplicate_indices_rejected(self, small_failed_problem):
        with pytest.raises(ValidationError):
            small_failed_problem.remove_indices(np.array([1, 1]))

    def test_is_reversing_subset_matches_ks_test(self, small_failed_problem):
        problem = small_failed_problem
        # Removing nothing cannot reverse a failed test.
        assert not problem.is_reversing_subset(np.array([], dtype=int))
        # Removing all the out-of-distribution points (the last four) does.
        assert problem.is_reversing_subset(np.arange(6, 10))

    def test_alpha_validation(self, paper_example):
        reference, test, _ = paper_example
        with pytest.raises(ValidationError):
            ExplanationProblem(reference, test, alpha=1.5)
