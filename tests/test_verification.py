"""Tests for the independent explanation verifier (repro.core.verification)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import GreedyExplainer
from repro.core.moche import explain_ks_failure
from repro.core.preference import PreferenceList
from repro.core.verification import verify_explanation
from tests.conftest import make_failed_pair


@pytest.fixture
def failed_pair(rng):
    return make_failed_pair(rng, 400, 300, shift_fraction=0.15)


class TestVerifyExplanation:
    def test_moche_explanation_passes_all_checks(self, failed_pair):
        reference, test = failed_pair
        preference = PreferenceList.from_scores(test, descending=True, seed=0)
        explanation = explain_ks_failure(reference, test, 0.05, preference)
        report = verify_explanation(reference, test, explanation, 0.05, preference)
        assert report.valid
        assert report.reverses_test
        assert report.is_minimum_size
        assert report.is_most_comprehensible is True
        assert report.claimed_size == report.minimum_size == explanation.size

    def test_moche_valid_under_any_preference(self, failed_pair):
        reference, test = failed_pair
        for seed in range(3):
            preference = PreferenceList.random(test.size, seed=seed)
            explanation = explain_ks_failure(reference, test, 0.05, preference)
            assert verify_explanation(reference, test, explanation, 0.05, preference).valid

    def test_greedy_explanation_is_not_minimum(self, failed_pair):
        reference, test = failed_pair
        # A deliberately misaligned preference forces a large greedy prefix.
        preference = PreferenceList.from_scores(test, descending=False, seed=0)
        greedy = GreedyExplainer(alpha=0.05).explain(reference, test, preference)
        moche = explain_ks_failure(reference, test, 0.05, preference)
        assert greedy.size > moche.size
        report = verify_explanation(reference, test, greedy, 0.05)
        assert report.reverses_test
        assert not report.is_minimum_size
        assert not report.valid
        assert report.minimum_size == moche.size

    def test_non_reversing_subset_detected(self, failed_pair):
        reference, test = failed_pair
        report = verify_explanation(reference, test, np.array([0]), 0.05)
        assert not report.reverses_test
        assert not report.valid

    def test_wrong_same_size_subset_is_not_most_comprehensible(self, failed_pair):
        reference, test = failed_pair
        preference = PreferenceList.from_scores(test, descending=True, seed=0)
        explanation = explain_ks_failure(reference, test, 0.05, preference)
        # Explain under a different preference: same size, different points,
        # so it cannot be most comprehensible for the original preference.
        other = explain_ks_failure(
            reference, test, 0.05, PreferenceList.from_scores(test, descending=False, seed=0)
        )
        assert set(other.indices.tolist()) != set(explanation.indices.tolist())
        report = verify_explanation(reference, test, other, 0.05, preference)
        assert report.reverses_test
        assert report.is_minimum_size
        assert report.is_most_comprehensible is False
        assert not report.valid

    def test_plain_index_array_accepted(self, failed_pair):
        reference, test = failed_pair
        explanation = explain_ks_failure(reference, test, 0.05)
        report = verify_explanation(reference, test, explanation.indices, 0.05)
        assert report.reverses_test and report.is_minimum_size

    def test_comprehensibility_not_checked_without_preference(self, failed_pair):
        reference, test = failed_pair
        explanation = explain_ks_failure(reference, test, 0.05)
        report = verify_explanation(reference, test, explanation, 0.05)
        assert report.is_most_comprehensible is None
        assert report.valid

    def test_paper_example_verification(self, paper_example):
        reference, test, alpha = paper_example
        preference = PreferenceList.from_order([3, 2, 1, 0])
        report = verify_explanation(reference, test, np.array([2, 1]), alpha, preference)
        assert report.valid
        # The subset {t1, t2} = {13, 13} reverses and is minimum but is less
        # comprehensible than {t3, t2} under this preference.
        other = verify_explanation(reference, test, np.array([0, 1]), alpha, preference)
        assert other.reverses_test and other.is_minimum_size
        assert other.is_most_comprehensible is False
