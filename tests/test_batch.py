"""Tests for the batch explainer (repro.core.batch)."""

from __future__ import annotations

import pytest

from repro.core.batch import BatchExplainer, BatchItem, windows_to_items
from repro.core.preference import PreferenceList
from repro.datasets.nab import generate_family
from repro.datasets.sliding_window import failed_window_pairs
from repro.exceptions import ValidationError
from tests.conftest import make_failed_pair


@pytest.fixture
def items(rng):
    entries = []
    for index in range(3):
        reference, test = make_failed_pair(rng, 200, 150, shift_fraction=0.2)
        entries.append(BatchItem(reference=reference, test=test, label=f"failed-{index}"))
    passing = rng.normal(size=150)
    entries.append(BatchItem(reference=passing, test=passing.copy(), label="passing"))
    return entries


class TestBatchExplainer:
    def test_explains_only_failing_pairs(self, items):
        batch = BatchExplainer(alpha=0.05)
        results = batch.run(items)
        assert len(results) == 4
        failed = [r for r in results if r.failed]
        assert len(failed) == 3
        assert all(r.explained for r in failed)
        passing = next(r for r in results if r.label == "passing")
        assert not passing.failed and not passing.explained

    def test_all_explanations_reverse(self, items):
        batch = BatchExplainer(alpha=0.05)
        batch.run(items)
        assert all(e.reverses_test for e in batch.explanations())

    def test_summary_statistics(self, items):
        batch = BatchExplainer(alpha=0.05)
        batch.run(items)
        summary = batch.summary()
        assert summary.total_pairs == 4
        assert summary.failed_pairs == 3
        assert summary.explained_pairs == 3
        assert summary.mean_size > 0
        assert 0 < summary.mean_fraction < 1
        assert summary.mean_estimation_error is not None
        assert summary.mean_estimation_error >= 0
        row = summary.as_row()
        assert row["pairs"] == 4

    def test_summary_before_run_rejected(self):
        with pytest.raises(ValidationError):
            BatchExplainer().summary()

    def test_summary_with_no_failures(self, rng):
        sample = rng.normal(size=100)
        batch = BatchExplainer(alpha=0.05)
        batch.run([BatchItem(reference=sample, test=sample.copy())])
        summary = batch.summary()
        assert summary.failed_pairs == 0
        assert summary.explained_pairs == 0
        assert summary.mean_estimation_error is None

    def test_preference_builder_used_when_item_has_none(self, items):
        calls = {"count": 0}

        def builder(reference, test):
            calls["count"] += 1
            return PreferenceList.identity(test.size)

        batch = BatchExplainer(alpha=0.05, preference_builder=builder)
        batch.run(items)
        assert calls["count"] == 3  # only the failing pairs get explained

    def test_item_preference_takes_precedence(self, rng):
        reference, test = make_failed_pair(rng, 200, 150, shift_fraction=0.2)
        preference = PreferenceList.from_scores(test, descending=True, seed=0)

        def builder(reference_, test_):  # pragma: no cover - must not be called
            raise AssertionError("builder should not be used")

        batch = BatchExplainer(alpha=0.05, preference_builder=builder)
        results = batch.run([BatchItem(reference=reference, test=test, preference=preference)])
        assert results[0].explained

    def test_windows_to_items_from_sliding_windows(self):
        dataset = generate_family("ART", seed=9, series_count=1)
        pairs = failed_window_pairs(dataset.series[0], window_size=200)[:2]
        items = windows_to_items(pairs)
        assert len(items) == len(pairs)
        assert all("@" in item.label for item in items)
        batch = BatchExplainer(alpha=0.05)
        results = batch.run(items)
        assert all(result.explained for result in results)
