"""Tests for the brute-force oracle (repro.core.brute_force)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.brute_force import BruteForceExplainer
from repro.core.preference import PreferenceList
from repro.exceptions import KSTestPassedError, ValidationError


class TestBruteForce:
    def test_paper_example(self, paper_example):
        reference, test, alpha = paper_example
        explainer = BruteForceExplainer(alpha=alpha)
        explanation = explainer.explain(
            reference, test, PreferenceList.from_order([3, 2, 1, 0])
        )
        assert explanation.size == 2
        assert sorted(explanation.indices.tolist()) == [1, 2]
        assert explanation.reverses_test

    def test_smaller_subsets_do_not_reverse(self, paper_example):
        reference, test, alpha = paper_example
        explainer = BruteForceExplainer(alpha=alpha)
        size = explainer.explanation_size(reference, test)
        from repro.core.cumulative import ExplanationProblem
        from itertools import combinations

        problem = ExplanationProblem(reference, test, alpha)
        for subset in combinations(range(problem.m), size - 1):
            assert not problem.is_reversing_subset(np.array(subset))

    def test_respects_preference_order(self, rng):
        reference = rng.normal(size=40)
        test = np.concatenate([rng.normal(size=4), rng.uniform(3, 5, size=5)])
        first = BruteForceExplainer().explain(
            reference, test, PreferenceList.identity(test.size)
        )
        reversed_pref = PreferenceList.from_order(list(range(test.size))[::-1])
        second = BruteForceExplainer().explain(reference, test, reversed_pref)
        assert first.size == second.size

    def test_rejects_large_test_sets(self, rng):
        reference = rng.normal(size=100)
        test = rng.normal(3.0, size=50)
        with pytest.raises(ValidationError):
            BruteForceExplainer(max_size=20).explain(reference, test)

    def test_rejects_passed_tests(self, rng):
        sample = rng.normal(size=50)
        with pytest.raises(KSTestPassedError):
            BruteForceExplainer().explain(sample, sample.copy())

    def test_method_name_and_runtime(self, paper_example):
        reference, test, alpha = paper_example
        explanation = BruteForceExplainer(alpha=alpha).explain(reference, test)
        assert explanation.method == "brute_force"
        assert explanation.runtime_seconds >= 0
