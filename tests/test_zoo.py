"""Tests for the zeroth-order optimizer (repro.baselines.zoo)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.zoo import ZerothOrderOptimizer
from repro.exceptions import ValidationError


class TestZerothOrderOptimizer:
    def test_minimises_a_smooth_convex_function(self):
        target = np.full(5, 0.3)

        def objective(x: np.ndarray) -> float:
            return float(np.sum((x - target) ** 2))

        optimizer = ZerothOrderOptimizer(max_iterations=300, step_size=0.1, seed=0)
        result = optimizer.minimize(objective, np.ones(5))
        assert result.value < objective(np.ones(5))
        assert result.value < 0.2

    def test_respects_box_constraints(self):
        def objective(x: np.ndarray) -> float:
            return float(np.sum(x))  # minimised at the lower corner

        result = ZerothOrderOptimizer(max_iterations=100, seed=1).minimize(
            objective, np.full(4, 0.5)
        )
        assert np.all(result.point >= 0.0)
        assert np.all(result.point <= 1.0)

    def test_early_stop_on_target(self):
        calls = {"count": 0}

        def objective(x: np.ndarray) -> float:
            calls["count"] += 1
            return float(np.sum(x**2))

        optimizer = ZerothOrderOptimizer(max_iterations=500, target=10.0, seed=2)
        result = optimizer.minimize(objective, np.zeros(3))
        assert result.converged
        assert result.iterations == 0
        assert calls["count"] == 1

    def test_counts_evaluations(self):
        def objective(x: np.ndarray) -> float:
            return float(np.sum(x))

        optimizer = ZerothOrderOptimizer(max_iterations=10, directions_per_step=4, seed=0)
        result = optimizer.minimize(objective, np.full(3, 0.5))
        assert result.evaluations > 10

    def test_deterministic_given_seed(self):
        def objective(x: np.ndarray) -> float:
            return float(np.sum((x - 0.2) ** 2))

        first = ZerothOrderOptimizer(max_iterations=50, seed=7).minimize(objective, np.ones(4))
        second = ZerothOrderOptimizer(max_iterations=50, seed=7).minimize(objective, np.ones(4))
        assert np.allclose(first.point, second.point)

    @pytest.mark.parametrize("kwargs", [
        {"max_iterations": 0},
        {"directions_per_step": 0},
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            ZerothOrderOptimizer(**kwargs)
