"""Tests for the drift-detection pipeline (repro.drift)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ks import ks_statistic, ks_test
from repro.datasets.synthetic import drifting_series
from repro.drift.detector import IncrementalKSDetector, KSDriftDetector
from repro.drift.incremental_ks import IncrementalKS
from repro.drift.monitor import ExplainedDriftMonitor, spectral_residual_preference
from repro.exceptions import ValidationError


class TestKSDriftDetector:
    def test_no_alarm_on_stationary_stream(self, rng):
        detector = KSDriftDetector(window_size=100, alpha=0.01)
        alarms = list(detector.process(rng.normal(size=2000)))
        assert len(alarms) <= 1  # false alarms are rare at alpha = 0.01

    def test_alarm_raised_on_abrupt_drift(self, rng):
        values, _ = drifting_series(length=2000, drift_start=1000, drift_magnitude=3.0, seed=0)
        detector = KSDriftDetector(window_size=200, alpha=0.05)
        alarms = list(detector.process(values))
        assert alarms
        assert all(alarm.result.rejected for alarm in alarms)
        assert any(800 <= alarm.position <= 1400 for alarm in alarms)

    def test_alarm_windows_have_correct_size(self, rng):
        values, _ = drifting_series(length=1500, drift_start=700, drift_magnitude=3.0, seed=1)
        detector = KSDriftDetector(window_size=150)
        for alarm in detector.process(values):
            assert alarm.reference.size == 150
            assert alarm.test.size == 150

    def test_observation_counter(self, rng):
        detector = KSDriftDetector(window_size=50)
        list(detector.process(rng.normal(size=500)))
        assert detector.observations_seen == 500

    def test_not_ready_before_two_windows(self, rng):
        detector = KSDriftDetector(window_size=100)
        for value in rng.normal(size=150):
            detector.update(value)
        assert not detector.ready

    def test_invalid_window_rejected(self):
        with pytest.raises(ValidationError):
            KSDriftDetector(window_size=1)

    def test_tiling_mode_uses_previous_window_as_reference(self, rng):
        values = np.concatenate([rng.normal(size=300), rng.normal(5.0, size=300)])
        detector = KSDriftDetector(window_size=100, slide_on_alarm=False)
        alarms = list(detector.process(values))
        # With the tiling protocol the drift boundary triggers exactly around
        # the window containing the change.
        assert len(alarms) >= 1

    def test_tests_run_counter(self, rng):
        detector = KSDriftDetector(window_size=100)
        list(detector.process(rng.normal(size=1000)))
        # One test per completed test window after the reference warm-up.
        assert detector.tests_run == (1000 - 100) // 100

    def test_custom_ks_runner_injected(self, rng):
        calls = {"count": 0}

        def runner(reference, test, alpha):
            calls["count"] += 1
            return ks_test(reference, test, alpha)

        detector = KSDriftDetector(window_size=100, ks_runner=runner)
        list(detector.process(rng.normal(size=1000)))
        assert calls["count"] == detector.tests_run > 0


class TestIncrementalKSDetector:
    def test_alarm_raised_on_abrupt_drift(self):
        values, _ = drifting_series(length=1500, drift_start=700, drift_magnitude=3.0, seed=3)
        detector = IncrementalKSDetector(window_size=150, alpha=0.05, stride=5)
        alarms = list(detector.process(values))
        assert alarms
        assert all(alarm.result.rejected for alarm in alarms)

    def test_alarm_statistic_matches_batch_ks_test(self):
        values, _ = drifting_series(length=1500, drift_start=700, drift_magnitude=3.0, seed=3)
        detector = IncrementalKSDetector(window_size=150, alpha=0.05, stride=5)
        for alarm in detector.process(values):
            batch = ks_test(alarm.reference, alarm.test, 0.05)
            assert alarm.result.statistic == pytest.approx(batch.statistic, abs=1e-12)
            assert alarm.result.threshold == pytest.approx(batch.threshold)

    def test_detects_no_later_than_windowed_detector(self):
        values, _ = drifting_series(length=1500, drift_start=700, drift_magnitude=3.0, seed=6)
        windowed = KSDriftDetector(window_size=150, alpha=0.05)
        incremental = IncrementalKSDetector(window_size=150, alpha=0.05)
        windowed_alarms = list(windowed.process(values))
        incremental_alarms = list(incremental.process(values))
        assert windowed_alarms and incremental_alarms
        # Testing on every arrival flags the drift at least as early as
        # testing once per full window.
        assert incremental_alarms[0].position <= windowed_alarms[0].position

    def test_no_alarm_on_stationary_stream(self, rng):
        detector = IncrementalKSDetector(window_size=100, alpha=0.01, stride=10)
        alarms = list(detector.process(rng.normal(size=1500)))
        assert len(alarms) <= 2  # per-observation testing allows rare false alarms

    def test_stride_limits_test_frequency(self, rng):
        detector = IncrementalKSDetector(window_size=100, alpha=0.01, stride=25)
        list(detector.process(rng.normal(size=1100)))
        # 200 warm-up observations, then one test every 25 arrivals.
        assert detector.tests_run <= (1100 - 200) // 25 + 1

    def test_windows_slide_one_observation_at_a_time(self, rng):
        detector = IncrementalKSDetector(window_size=50, alpha=0.0001)
        values = rng.normal(size=220)
        for value in values:
            detector.update(value)
        assert detector.ready
        np.testing.assert_allclose(detector.test_window(), values[-50:])
        np.testing.assert_allclose(detector.reference_window(), values[:50])

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValidationError):
            IncrementalKSDetector(window_size=1)
        with pytest.raises(ValidationError):
            IncrementalKSDetector(window_size=10, stride=0)

    def test_non_finite_observations_rejected(self, rng):
        from repro.exceptions import NonFiniteDataError

        detector = IncrementalKSDetector(window_size=10)
        for value in rng.normal(size=15):
            detector.update(value)
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(NonFiniteDataError):
                detector.update(bad)
        # The rejected values must not have advanced the stream.
        assert detector.observations_seen == 15


class TestIncrementalKS:
    def test_matches_batch_statistic(self, rng):
        reference = rng.normal(size=80)
        test = rng.normal(0.5, size=60)
        incremental = IncrementalKS.from_samples(reference, test)
        assert incremental.statistic() == pytest.approx(ks_statistic(reference, test))

    def test_matches_batch_after_insert_and_remove(self, rng):
        reference = list(rng.normal(size=50))
        test = list(rng.normal(size=50))
        incremental = IncrementalKS.from_samples(np.array(reference), np.array(test))
        # Slide the test window: remove the oldest 20, add 20 new drifted points.
        new_points = list(rng.normal(2.0, size=20))
        for value in test[:20]:
            incremental.remove(value, "test")
        for value in new_points:
            incremental.insert(value, "test")
        updated_test = np.array(test[20:] + new_points)
        assert incremental.statistic() == pytest.approx(
            ks_statistic(np.array(reference), updated_test)
        )
        assert incremental.test_size == 50

    def test_rejected_matches_ks_test(self, rng):
        reference = rng.normal(size=100)
        test = rng.normal(1.5, size=100)
        incremental = IncrementalKS.from_samples(reference, test)
        assert incremental.rejected(0.05) == ks_test(reference, test, 0.05).rejected

    def test_duplicate_values_counted(self):
        incremental = IncrementalKS()
        for value in [1.0, 1.0, 2.0]:
            incremental.insert(value, "reference")
        for value in [1.0, 3.0]:
            incremental.insert(value, "test")
        assert incremental.reference_size == 3
        assert incremental.test_size == 2
        expected = ks_statistic(np.array([1.0, 1.0, 2.0]), np.array([1.0, 3.0]))
        assert incremental.statistic() == pytest.approx(expected)

    def test_remove_missing_value_rejected(self):
        incremental = IncrementalKS()
        incremental.insert(1.0, "reference")
        incremental.insert(2.0, "test")
        with pytest.raises(ValidationError):
            incremental.remove(5.0, "test")

    def test_remove_from_empty_sample_rejected(self):
        incremental = IncrementalKS()
        incremental.insert(1.0, "reference")
        with pytest.raises(ValidationError):
            incremental.remove(1.0, "test")

    def test_unknown_sample_label_rejected(self):
        with pytest.raises(ValidationError):
            IncrementalKS().insert(1.0, "other")

    def test_statistic_requires_both_samples(self):
        incremental = IncrementalKS()
        incremental.insert(1.0, "reference")
        with pytest.raises(ValidationError):
            incremental.statistic()

    def test_large_random_sequence_of_updates(self, rng):
        incremental = IncrementalKS(seed=1)
        reference: list[float] = []
        test: list[float] = []
        for _ in range(300):
            value = float(np.round(rng.normal(), 1))
            if rng.random() < 0.5:
                incremental.insert(value, "reference")
                reference.append(value)
            else:
                incremental.insert(value, "test")
                test.append(value)
        if reference and test:
            assert incremental.statistic() == pytest.approx(
                ks_statistic(np.array(reference), np.array(test))
            )


class TestExplainedDriftMonitor:
    def test_alarms_come_with_reversing_explanations(self, rng):
        values, labels = drifting_series(
            length=1600, drift_start=800, drift_magnitude=3.0, noise=1.0, seed=2
        )
        monitor = ExplainedDriftMonitor(window_size=200, alpha=0.05)
        alarms = list(monitor.process(values))
        assert alarms
        for alarm in alarms:
            assert alarm.explanation.reverses_test
            assert 0 < alarm.explanation.size < 200
            assert alarm.culprit_values.size == alarm.explanation.size

    def test_culprits_overlap_true_drift(self, rng):
        values, _ = drifting_series(
            length=1600, drift_start=800, drift_magnitude=4.0, noise=0.5, seed=3
        )
        monitor = ExplainedDriftMonitor(window_size=200, alpha=0.05)
        alarms = list(monitor.process(values))
        assert alarms
        first = alarms[0]
        # The explained points should be drawn from the drifted regime, i.e.
        # their values should be clearly above the pre-drift mean of ~0.
        assert first.culprit_values.mean() > 1.0

    def test_custom_preference_builder_used(self, rng):
        calls = {"count": 0}

        def builder(reference, test):
            calls["count"] += 1
            return spectral_residual_preference(reference, test)

        values, _ = drifting_series(length=1200, drift_start=600, drift_magnitude=3.0, seed=4)
        monitor = ExplainedDriftMonitor(window_size=150, preference_builder=builder)
        alarms = list(monitor.process(values))
        assert calls["count"] == len(alarms)

    def test_spectral_residual_preference_is_valid(self, rng):
        reference = rng.normal(size=100)
        test = rng.normal(size=100)
        preference = spectral_residual_preference(reference, test)
        assert len(preference) == 100
